//! An Asynchronous Dynamic Load Balancing library (paper §III: ADLB).
//!
//! Argonne's ADLB is a loosely coupled work-sharing library that
//! "aggressively employs non-deterministic commands" — servers sit in
//! wildcard-receive loops fielding `PUT`/`GET` traffic from workers. Its
//! degree of non-determinism defeats full-coverage verification even at a
//! dozen processes (the paper could not handle it under ISP at all), which
//! makes it the stress test for bounded mixing (Fig. 9).
//!
//! This implementation reproduces the protocol shape:
//!
//! * ranks `0..nservers` are **servers** holding work queues;
//! * the remaining ranks are **workers** that `GET` work, compute, and
//!   `PUT` spawned child items back;
//! * a `GET` against an empty queue *parks* the worker until work arrives
//!   (ADLB's blocking get) — no busy polling, so the epoch structure is
//!   deterministic;
//! * termination: when no work is queued, none is in flight, and every
//!   worker is parked, the server answers `DONE` to all.

use bytes::Bytes;
use dampi_mpi::envelope::codec;
use dampi_mpi::proc_api::user_assert;
use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Result, ANY_SOURCE, ANY_TAG};

use crate::tags;

/// Parameters of the ADLB workload.
#[derive(Debug, Clone, Copy)]
pub struct AdlbParams {
    /// Number of server ranks (work-queue holders).
    pub nservers: usize,
    /// Root work items seeded per server.
    pub seed_items: usize,
    /// Each item spawns children while its depth is below this.
    pub spawn_depth: usize,
    /// Children per spawning item.
    pub spawn_width: usize,
    /// Simulated compute seconds per item.
    pub work_cost: f64,
}

impl Default for AdlbParams {
    fn default() -> Self {
        Self {
            nservers: 1,
            seed_items: 4,
            spawn_depth: 1,
            spawn_width: 2,
            work_cost: 1e-5,
        }
    }
}

impl AdlbParams {
    /// Total items each server will see (seeds plus all spawned
    /// descendants): `seeds * (w^(d+1) - 1)/(w - 1)` for width `w`,
    /// depth `d`.
    #[must_use]
    pub fn items_per_server(&self) -> usize {
        let w = self.spawn_width;
        let mut per_seed = 0usize;
        let mut level = 1usize;
        for _ in 0..=self.spawn_depth {
            per_seed += level;
            level *= w.max(1);
        }
        self.seed_items * per_seed
    }
}

/// The ADLB work-sharing program.
#[derive(Debug, Clone)]
pub struct Adlb {
    params: AdlbParams,
}

impl Adlb {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: AdlbParams) -> Self {
        Self { params }
    }

    /// Which server a worker talks to.
    fn server_of(&self, worker: usize) -> usize {
        worker % self.params.nservers
    }

    fn run_server(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let me = mpi.world_rank();
        let np = mpi.world_size();
        let p = self.params;
        let my_workers: Vec<usize> = (p.nservers..np)
            .filter(|w| self.server_of(*w) == me)
            .collect();
        // Item encoding: (depth, id) packed into a u64 pair.
        let mut queue: Vec<(u64, u64)> = (0..p.seed_items)
            .map(|i| (0u64, (me * 1_000_000 + i) as u64))
            .collect();
        let mut parked: Vec<usize> = Vec::new();
        let mut in_flight = 0usize;
        let mut completed = 0u64;
        let mut finished_workers = 0usize;
        if my_workers.is_empty() {
            return Ok(());
        }
        loop {
            // Serve parked workers while work is available.
            while !queue.is_empty() && !parked.is_empty() {
                let worker = parked.pop().expect("nonempty");
                let (depth, id) = queue.pop().expect("nonempty");
                mpi.send(
                    Comm::WORLD,
                    worker as i32,
                    tags::WORK,
                    codec::encode_u64s(&[depth, id]),
                )?;
                in_flight += 1;
            }
            // Termination: nothing queued, nothing running, all parked.
            if queue.is_empty() && in_flight == 0 && parked.len() == my_workers.len() {
                for worker in parked.drain(..) {
                    mpi.send(Comm::WORLD, worker as i32, tags::DONE, Bytes::new())?;
                    finished_workers += 1;
                }
                break;
            }
            // The non-deterministic server loop: field whatever arrives.
            let (st, data) = mpi.recv(Comm::WORLD, ANY_SOURCE, ANY_TAG)?;
            match st.tag {
                tags::GET => {
                    parked.push(st.source);
                }
                tags::PUT => {
                    let vals = codec::decode_u64s(&data);
                    queue.push((vals[0], vals[1]));
                }
                tags::RESULT => {
                    in_flight -= 1;
                    completed += 1;
                }
                other => {
                    return Err(dampi_mpi::MpiError::UserAssert {
                        message: format!("server got unexpected tag {other}"),
                    })
                }
            }
        }
        user_assert(
            completed as usize == p.items_per_server(),
            format!(
                "server {me} completed {completed} items, expected {}",
                p.items_per_server()
            ),
        )?;
        user_assert(
            finished_workers == my_workers.len(),
            "server retired all its workers",
        )?;
        Ok(())
    }

    fn run_worker(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let me = mpi.world_rank();
        let p = self.params;
        let server = self.server_of(me) as i32;
        let mut items_done = 0u64;
        loop {
            mpi.send(Comm::WORLD, server, tags::GET, Bytes::new())?;
            let (st, data) = mpi.recv(Comm::WORLD, server, ANY_TAG)?;
            match st.tag {
                tags::WORK => {
                    let vals = codec::decode_u64s(&data);
                    let (depth, id) = (vals[0], vals[1]);
                    mpi.compute(p.work_cost)?;
                    if (depth as usize) < p.spawn_depth {
                        for c in 0..p.spawn_width {
                            mpi.send(
                                Comm::WORLD,
                                server,
                                tags::PUT,
                                codec::encode_u64s(&[depth + 1, id * 31 + c as u64 + 1]),
                            )?;
                        }
                    }
                    mpi.send(Comm::WORLD, server, tags::RESULT, Bytes::new())?;
                    items_done += 1;
                }
                tags::DONE => break,
                other => {
                    return Err(dampi_mpi::MpiError::UserAssert {
                        message: format!("worker got unexpected tag {other}"),
                    })
                }
            }
        }
        let _ = items_done;
        Ok(())
    }
}

impl MpiProgram for Adlb {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let np = mpi.world_size();
        let p = self.params;
        if np <= p.nservers {
            return Ok(());
        }
        if mpi.world_rank() < p.nservers {
            self.run_server(mpi)?;
        } else {
            self.run_worker(mpi)?;
        }
        // Global sanity: total completions across servers.
        let total = mpi.allreduce_u64(Comm::WORLD, vec![0], ReduceOp::Sum)?;
        let _ = total;
        Ok(())
    }

    fn name(&self) -> &str {
        "ADLB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn item_count_formula() {
        let p = AdlbParams {
            seed_items: 2,
            spawn_depth: 1,
            spawn_width: 2,
            ..Default::default()
        };
        // Each seed: itself + 2 children = 3; two seeds = 6.
        assert_eq!(p.items_per_server(), 6);
        let p2 = AdlbParams {
            seed_items: 1,
            spawn_depth: 2,
            spawn_width: 3,
            ..Default::default()
        };
        // 1 + 3 + 9 = 13.
        assert_eq!(p2.items_per_server(), 13);
    }

    #[test]
    fn completes_natively_one_server() {
        let prog = Adlb::new(AdlbParams::default());
        let out = run_native(&SimConfig::new(4), &prog);
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean(), "{:?}", out.leaks);
    }

    #[test]
    fn completes_with_multiple_servers() {
        let prog = Adlb::new(AdlbParams {
            nservers: 2,
            seed_items: 3,
            spawn_depth: 1,
            spawn_width: 2,
            work_cost: 0.0,
        });
        let out = run_native(&SimConfig::new(8), &prog);
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }

    #[test]
    fn no_spawning_still_terminates() {
        let prog = Adlb::new(AdlbParams {
            seed_items: 5,
            spawn_depth: 0,
            spawn_width: 0,
            ..Default::default()
        });
        let out = run_native(&SimConfig::new(3), &prog);
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }

    #[test]
    fn degenerate_all_servers() {
        let prog = Adlb::new(AdlbParams {
            nservers: 4,
            ..Default::default()
        });
        let out = run_native(&SimConfig::new(3), &prog);
        assert!(out.succeeded());
    }

    #[test]
    fn repeated_runs_complete_under_racy_schedules() {
        // The server loop is heavily non-deterministic; run several times
        // to exercise different native schedules.
        for _ in 0..10 {
            let prog = Adlb::new(AdlbParams {
                seed_items: 3,
                spawn_depth: 2,
                spawn_width: 2,
                work_cost: 0.0,
                nservers: 1,
            });
            let out = run_native(&SimConfig::new(5), &prog);
            assert!(out.succeeded(), "{:?}", out.rank_errors);
        }
    }
}
