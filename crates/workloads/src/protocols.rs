//! Committed session-protocol specifications for the workloads.
//!
//! Each constant embeds one `.protocol` file from `crates/workloads/protocols/`
//! (the session-type language parsed by `dampi_analysis::ProtocolSpec`). The
//! specs are the golden inputs for `dampi-cli analyze --protocol` and
//! `verify --prune-static --protocol`, and the conformance zero-false-positive
//! gate asserts that each one is clean against its workload's traced run.

/// Master/slave task farm spec shared by `matmul` and `matmul_ack`.
pub const MATMUL: &str = include_str!("../protocols/matmul.protocol");

/// Server/worker load-balancer spec for `adlb`.
pub const ADLB: &str = include_str!("../protocols/adlb.protocol");

/// Racing-producers spec for `patterns::symmetric_racers` (collectives out
/// of scope; see the file header for why).
pub const SYMMETRIC_RACERS: &str = include_str!("../protocols/symmetric_racers.protocol");

/// Token-serialised funnel spec for `patterns::ordered_stages`; its sink's
/// wildcards are protocol-deterministic, the headline `--prune-static
/// --protocol` win.
pub const ORDERED_STAGES: &str = include_str!("../protocols/ordered_stages.protocol");

/// Coordinator demo spec for `patterns::protocol_demo` and the seeded
/// `protocol_{order,peer,short}_bug` violation patterns.
pub const PROTOCOL_DEMO: &str = include_str!("../protocols/protocol_demo.protocol");

/// Every committed spec as `(workload name, spec source)`, in registry order.
///
/// The name column matches the `dampi-cli` workload registry, so CI can walk
/// this table and replay each spec against its program by name.
pub const ALL: &[(&str, &str)] = &[
    ("matmul", MATMUL),
    ("matmul_ack", MATMUL),
    ("adlb", ADLB),
    ("racers", SYMMETRIC_RACERS),
    ("ordered_stages", ORDERED_STAGES),
    ("protocol_demo", PROTOCOL_DEMO),
];

/// Look up a committed spec by workload (or spec) name.
///
/// Accepts the registry names from [`ALL`] plus a few aliases so
/// `--protocol matmul` and `--protocol symmetric_racers` both resolve.
pub fn by_name(name: &str) -> Option<&'static str> {
    match name {
        "matmul" | "matmul_ack" => Some(MATMUL),
        "adlb" => Some(ADLB),
        "racers" | "symmetric_racers" => Some(SYMMETRIC_RACERS),
        "ordered_stages" => Some(ORDERED_STAGES),
        "protocol_demo" | "demo" => Some(PROTOCOL_DEMO),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_committed_spec_resolves_by_name() {
        for (name, source) in ALL {
            assert_eq!(by_name(name), Some(*source), "lookup failed for {name}");
        }
        assert!(by_name("no_such_spec").is_none());
    }
}
