//! MG (Multigrid): V-cycles over a grid hierarchy.
//!
//! Communication skeleton: halo exchanges whose partner stride doubles at
//! each coarser level (so coarse levels touch distant ranks), a residual
//! allreduce per V-cycle. Deterministic and leak-free (Table II: 1.15x).

use dampi_mpi::envelope::codec;
use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Request, Result};

use crate::tags;

/// MG skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct MgParams {
    /// V-cycles.
    pub cycles: usize,
    /// Finest-level halo bytes (halved per coarser level).
    pub msg_bytes: usize,
    /// Simulated smoother compute per level.
    pub smooth_cost: f64,
}

/// The MG program.
#[derive(Debug, Clone)]
pub struct Mg {
    params: MgParams,
}

impl Mg {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: MgParams) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(MgParams {
            cycles: 8,
            msg_bytes: 1024,
            smooth_cost: 5e-5,
        })
    }

    /// Halo exchange with partners at `stride` in both directions.
    fn strided_halo(&self, mpi: &mut dyn Mpi, stride: usize, bytes: usize) -> Result<()> {
        let np = mpi.world_size();
        let me = mpi.world_rank();
        let words = bytes.div_ceil(8).max(1);
        let data = codec::encode_u64s(&vec![me as u64; words]);
        let mut reqs: Vec<Request> = Vec::with_capacity(4);
        if me >= stride {
            reqs.push(mpi.irecv(Comm::WORLD, (me - stride) as i32, tags::HALO)?);
            reqs.push(mpi.isend(Comm::WORLD, (me - stride) as i32, tags::HALO, data.clone())?);
        }
        if me + stride < np {
            reqs.push(mpi.irecv(Comm::WORLD, (me + stride) as i32, tags::HALO)?);
            reqs.push(mpi.isend(Comm::WORLD, (me + stride) as i32, tags::HALO, data)?);
        }
        mpi.waitall(&reqs)?;
        Ok(())
    }
}

impl MpiProgram for Mg {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let np = mpi.world_size();
        for _ in 0..self.params.cycles {
            // Down-sweep: finest to coarsest.
            let mut stride = 1usize;
            let mut bytes = self.params.msg_bytes;
            while stride < np {
                self.strided_halo(mpi, stride, bytes)?;
                mpi.compute(self.params.smooth_cost)?;
                stride *= 2;
                bytes = (bytes / 2).max(8);
            }
            // Up-sweep: coarsest back to finest.
            while stride > 1 {
                stride /= 2;
                bytes *= 2;
                self.strided_halo(mpi, stride, bytes)?;
                mpi.compute(self.params.smooth_cost)?;
            }
            let _ = mpi.allreduce_f64(Comm::WORLD, vec![1.0], ReduceOp::Sum)?;
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "MG"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn runs_clean() {
        let out = run_native(&SimConfig::new(8), &Mg::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean());
    }

    #[test]
    fn tiny_world() {
        let out = run_native(&SimConfig::new(2), &Mg::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }
}
