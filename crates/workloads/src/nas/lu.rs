//! LU (SSOR solver): pipelined wavefront sweeps.
//!
//! Communication skeleton: on a 2-D grid, each SSOR iteration sweeps a
//! wavefront from the top-left corner (receive from north and west,
//! compute, send to south and east) and a mirrored reverse sweep. Interior
//! ranks consume their two incoming faces with **wildcard receives** in
//! arrival order — the source of LU's Table II R\* count (~1 per rank per
//! sweep) — and the many small per-wavefront messages give LU the highest
//! NAS overhead under DAMPI (2.22x).

use dampi_mpi::envelope::codec;
use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Result, ANY_SOURCE};

use crate::idioms::grid_dims;
use crate::tags;

/// LU skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct LuParams {
    /// SSOR iterations (each = forward + backward sweep).
    pub iters: usize,
    /// Face-message bytes.
    pub msg_bytes: usize,
    /// Simulated compute per wavefront cell.
    pub cell_cost: f64,
    /// Iterations whose sweeps consume faces with wildcard receives (the
    /// arrival-order lookahead path); later iterations use named receives.
    /// Table II's LU R\* is ~1 per rank, so only the first iteration or
    /// two uses the wildcard path while the message volume — the actual
    /// driver of LU's 2.22x overhead — stays high throughout.
    pub wildcard_iters: usize,
}

/// The LU program.
#[derive(Debug, Clone)]
pub struct Lu {
    params: LuParams,
}

impl Lu {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: LuParams) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(LuParams {
            iters: 12,
            msg_bytes: 128,
            cell_cost: 9e-6,
            wildcard_iters: 1,
        })
    }

    /// One sweep in the given direction (`forward`: from NW corner).
    fn sweep(&self, mpi: &mut dyn Mpi, forward: bool, wildcard: bool) -> Result<()> {
        let np = mpi.world_size();
        let me = mpi.world_rank();
        let (rows, cols) = grid_dims(np);
        let (r, c) = (me / cols, me % cols);
        // Upstream/downstream neighbors for this direction.
        let (up, down): (Vec<usize>, Vec<usize>) = if forward {
            let mut up = Vec::new();
            let mut down = Vec::new();
            if r > 0 {
                up.push((r - 1) * cols + c);
            }
            if c > 0 {
                up.push(r * cols + c - 1);
            }
            if r + 1 < rows {
                down.push((r + 1) * cols + c);
            }
            if c + 1 < cols {
                down.push(r * cols + c + 1);
            }
            (up, down)
        } else {
            let mut up = Vec::new();
            let mut down = Vec::new();
            if r + 1 < rows {
                up.push((r + 1) * cols + c);
            }
            if c + 1 < cols {
                up.push(r * cols + c + 1);
            }
            if r > 0 {
                down.push((r - 1) * cols + c);
            }
            if c > 0 {
                down.push(r * cols + c - 1);
            }
            (up, down)
        };
        if wildcard {
            // Lookahead path: consume incoming faces in arrival order.
            for _ in &up {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, tags::SWEEP)?;
            }
        } else {
            for &u in &up {
                let _ = mpi.recv(Comm::WORLD, u as i32, tags::SWEEP)?;
            }
        }
        mpi.compute(self.params.cell_cost)?;
        let words = self.params.msg_bytes.div_ceil(8).max(1);
        for &d in &down {
            mpi.send(
                Comm::WORLD,
                d as i32,
                tags::SWEEP,
                codec::encode_u64s(&vec![me as u64; words]),
            )?;
        }
        Ok(())
    }
}

impl MpiProgram for Lu {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        for it in 0..self.params.iters {
            let wildcard = it < self.params.wildcard_iters;
            self.sweep(mpi, true, wildcard)?;
            self.sweep(mpi, false, wildcard)?;
            let _ = mpi.allreduce_f64(Comm::WORLD, vec![1.0], ReduceOp::Max)?;
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "LU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn runs_clean() {
        let out = run_native(&SimConfig::new(9), &Lu::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean(), "{:?}", out.leaks);
    }

    #[test]
    fn wildcards_present_under_dampi() {
        use dampi_core::{DampiConfig, DampiVerifier};
        let v = DampiVerifier::with_config(
            SimConfig::new(4),
            DampiConfig::default().with_max_interleavings(1),
        );
        let prog = Lu::new(LuParams {
            iters: 2,
            msg_bytes: 64,
            cell_cost: 0.0,
            wildcard_iters: 1,
        });
        let res = v.instrumented_run(&prog, &dampi_core::DecisionSet::self_run());
        assert!(res.outcome.succeeded(), "{:?}", res.outcome.fatal);
        assert!(res.stats.wildcards > 0, "LU uses wildcard receives");
    }

    #[test]
    fn single_row_grid() {
        let out = run_native(
            &SimConfig::new(3),
            &Lu::new(LuParams {
                iters: 2,
                msg_bytes: 64,
                cell_cost: 0.0,
                wildcard_iters: 2,
            }),
        );
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }
}
