//! CG (Conjugate Gradient): irregular sparse matrix-vector products.
//!
//! Communication skeleton: per iteration, a hypercube butterfly exchange
//! (the row/column-partner reductions of the NPB CG) plus two dot-product
//! allreduces. Fully deterministic; clean of leaks (Table II).

use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Result};

use crate::idioms;
use crate::tags;

/// CG skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct CgParams {
    /// CG iterations.
    pub iters: usize,
    /// Partner-exchange bytes.
    pub msg_bytes: usize,
    /// Simulated compute per matvec.
    pub matvec_cost: f64,
}

/// The CG program.
#[derive(Debug, Clone)]
pub struct Cg {
    params: CgParams,
}

impl Cg {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: CgParams) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(CgParams {
            iters: 25,
            msg_bytes: 1024,
            matvec_cost: 5.5e-4,
        })
    }
}

impl MpiProgram for Cg {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let mut rho = 1.0f64;
        for _ in 0..self.params.iters {
            idioms::butterfly(mpi, Comm::WORLD, tags::HALO, self.params.msg_bytes)?;
            mpi.compute(self.params.matvec_cost)?;
            let dot = mpi.allreduce_f64(Comm::WORLD, vec![rho], ReduceOp::Sum)?;
            rho = dot[0] / mpi.world_size() as f64;
            let norm = mpi.allreduce_f64(Comm::WORLD, vec![rho * rho], ReduceOp::Sum)?;
            rho = norm[0].sqrt().max(1e-30);
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "CG"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn runs_clean() {
        let out = run_native(&SimConfig::new(8), &Cg::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean());
    }

    #[test]
    fn non_power_of_two_world() {
        let out = run_native(
            &SimConfig::new(6),
            &Cg::new(CgParams {
                iters: 3,
                msg_bytes: 64,
                matvec_cost: 0.0,
            }),
        );
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }
}
