//! EP (Embarrassingly Parallel): random-number statistics.
//!
//! Communication skeleton: long local compute followed by a handful of
//! final reductions — the Table II floor case (1.02x slowdown), since the
//! tool has almost nothing to interpose on.

use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Result};

/// EP skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct EpParams {
    /// Compute batches.
    pub batches: usize,
    /// Simulated compute per batch.
    pub batch_cost: f64,
}

/// The EP program.
#[derive(Debug, Clone)]
pub struct Ep {
    params: EpParams,
}

impl Ep {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: EpParams) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(EpParams {
            batches: 10,
            batch_cost: 5e-4,
        })
    }
}

impl MpiProgram for Ep {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let me = mpi.world_rank() as u64;
        let mut counts = [0u64; 4];
        for b in 0..self.params.batches {
            mpi.compute(self.params.batch_cost)?;
            // Deterministic pseudo-random Gaussian-pair counting stand-in.
            counts[(me as usize + b) % 4] += 1 + (me * 31 + b as u64) % 7;
        }
        let totals = mpi.allreduce_u64(Comm::WORLD, counts.to_vec(), ReduceOp::Sum)?;
        let _ = mpi.reduce_f64(
            Comm::WORLD,
            0,
            vec![totals.iter().sum::<u64>() as f64],
            ReduceOp::Max,
        )?;
        Ok(())
    }

    fn name(&self) -> &str {
        "EP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn runs_clean() {
        let out = run_native(&SimConfig::new(8), &Ep::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean());
    }

    #[test]
    fn makespan_dominated_by_compute() {
        let out = run_native(&SimConfig::new(4), &Ep::nominal());
        let compute = 10.0 * 5e-4;
        assert!(out.makespan >= compute, "{}", out.makespan);
        assert!(out.makespan < compute * 1.5, "{}", out.makespan);
    }
}
