//! IS (Integer Sort): parallel bucket sort.
//!
//! Communication skeleton: per iteration an allreduce of bucket counts, an
//! all-to-all key redistribution, and a final verification reduction.
//! Deterministic and leak-free (Table II: 1.09x).

use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Result};

use crate::idioms;

/// IS skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct IsParams {
    /// Sort iterations.
    pub iters: usize,
    /// Bytes of keys exchanged with each peer.
    pub bytes_per_peer: usize,
    /// Simulated local-sort compute.
    pub sort_cost: f64,
}

/// The IS program.
#[derive(Debug, Clone)]
pub struct Is {
    params: IsParams,
}

impl Is {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: IsParams) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(IsParams {
            iters: 10,
            bytes_per_peer: 512,
            sort_cost: 9e-4,
        })
    }
}

impl MpiProgram for Is {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let np = mpi.world_size() as u64;
        for _ in 0..self.params.iters {
            // Bucket-size exchange.
            let sizes = mpi.allreduce_u64(
                Comm::WORLD,
                vec![mpi.world_rank() as u64 + 1; 4],
                ReduceOp::Sum,
            )?;
            debug_assert_eq!(sizes[0], np * (np + 1) / 2);
            // Key redistribution.
            idioms::transpose(mpi, Comm::WORLD, self.params.bytes_per_peer)?;
            mpi.compute(self.params.sort_cost)?;
        }
        // Final verification: global key count must be conserved.
        let _ = mpi.reduce_u64(Comm::WORLD, 0, vec![1], ReduceOp::Sum)?;
        Ok(())
    }

    fn name(&self) -> &str {
        "IS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn runs_clean() {
        let out = run_native(&SimConfig::new(8), &Is::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean());
    }
}
