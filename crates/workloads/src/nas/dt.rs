//! DT (Data Traffic): a small communication-graph benchmark.
//!
//! Communication skeleton: source ranks feed data through a shallow
//! binary-tree reduction into a sink — few, large messages, which is why
//! DT shows essentially no interposition overhead in Table II (1.01x).

use dampi_mpi::envelope::codec;
use dampi_mpi::{Comm, Mpi, MpiProgram, Result};

use crate::tags;

/// DT skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct DtParams {
    /// Graph evaluations.
    pub rounds: usize,
    /// Bytes per graph edge.
    pub msg_bytes: usize,
    /// Simulated compute per node visit.
    pub node_cost: f64,
}

/// The DT program.
#[derive(Debug, Clone)]
pub struct Dt {
    params: DtParams,
}

impl Dt {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: DtParams) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(DtParams {
            rounds: 4,
            msg_bytes: 4096,
            node_cost: 6e-4,
        })
    }
}

impl MpiProgram for Dt {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let np = mpi.world_size();
        let me = mpi.world_rank();
        for _ in 0..self.params.rounds {
            // Binary-tree reduction toward rank 0: leaves send up, inner
            // nodes combine children then forward.
            let left = 2 * me + 1;
            let right = 2 * me + 2;
            let mut acc = me as u64;
            if left < np {
                let (_, d) = mpi.recv(Comm::WORLD, left as i32, tags::RESULT)?;
                acc += codec::decode_u64s(&d)[0];
            }
            if right < np {
                let (_, d) = mpi.recv(Comm::WORLD, right as i32, tags::RESULT)?;
                acc += codec::decode_u64s(&d)[0];
            }
            mpi.compute(self.params.node_cost)?;
            if me > 0 {
                let words = self.params.msg_bytes.div_ceil(8).max(1);
                let mut v = vec![acc; words];
                v[0] = acc;
                mpi.send(
                    Comm::WORLD,
                    ((me - 1) / 2) as i32,
                    tags::RESULT,
                    codec::encode_u64s(&v),
                )?;
            } else {
                // Sink validates the whole-tree sum.
                let expect: u64 = (0..np as u64).sum();
                dampi_mpi::proc_api::user_assert(
                    acc == expect,
                    format!("DT sum {acc} != expected {expect}"),
                )?;
            }
            mpi.barrier(Comm::WORLD)?;
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "DT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn tree_sum_validates() {
        let out = run_native(&SimConfig::new(7), &Dt::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean());
    }

    #[test]
    fn works_at_odd_sizes() {
        for np in [1, 2, 3, 5, 10] {
            let out = run_native(
                &SimConfig::new(np),
                &Dt::new(DtParams {
                    rounds: 2,
                    msg_bytes: 64,
                    node_cost: 0.0,
                }),
            );
            assert!(out.succeeded(), "np={np}: {:?}", out.rank_errors);
        }
    }
}
