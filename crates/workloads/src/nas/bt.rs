//! BT (Block Tridiagonal): alternating-direction implicit solver.
//!
//! Communication skeleton: per iteration, face exchanges along both grid
//! dimensions (the x/y/z sweeps of the ADI scheme) plus a residual
//! reduction every few iterations. BT sets up a working communicator that
//! the original code never frees — Table II flags it (C-leak = Yes).

use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Result};

use crate::idioms;
use crate::tags;

/// BT skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct BtParams {
    /// ADI iterations.
    pub iters: usize,
    /// Face-message bytes.
    pub msg_bytes: usize,
    /// Simulated compute per sweep.
    pub sweep_cost: f64,
}

/// The BT program.
#[derive(Debug, Clone)]
pub struct Bt {
    params: BtParams,
}

impl Bt {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: BtParams) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(BtParams {
            iters: 20,
            msg_bytes: 512,
            sweep_cost: 6e-5,
        })
    }
}

impl MpiProgram for Bt {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let work = mpi.comm_dup(Comm::WORLD)?; // never freed: the C-leak
        for it in 0..self.params.iters {
            // x-, y-sweeps: 2-D face exchanges.
            idioms::halo_2d(mpi, work, tags::HALO, self.params.msg_bytes)?;
            mpi.compute(self.params.sweep_cost)?;
            idioms::halo_2d(mpi, work, tags::HALO + 1, self.params.msg_bytes)?;
            mpi.compute(self.params.sweep_cost)?;
            if it % 5 == 4 {
                let _ = mpi.allreduce_f64(work, vec![1.0], ReduceOp::Sum)?;
            }
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "BT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn runs_and_leaks_working_comm() {
        let out = run_native(&SimConfig::new(9), &Bt::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.has_comm_leak(), "Table II: BT C-leak = Yes");
    }

    #[test]
    fn two_rank_grid_works() {
        let out = run_native(
            &SimConfig::new(2),
            &Bt::new(BtParams {
                iters: 3,
                msg_bytes: 64,
                sweep_cost: 0.0,
            }),
        );
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }
}
