//! FT (Fourier Transform): 3-D FFT with global transposes.
//!
//! Communication skeleton: a few all-to-all transposes of large buffers
//! per iteration plus a checksum reduction. The original sets up a
//! transpose communicator it never frees — Table II flags it (C-leak =
//! Yes) while its overhead stays at the floor (1.01x: few, large
//! messages).

use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Result};

use crate::idioms;

/// FT skeleton parameters.
#[derive(Debug, Clone, Copy)]
pub struct FtParams {
    /// FFT iterations.
    pub iters: usize,
    /// Bytes each rank sends every peer per transpose.
    pub bytes_per_peer: usize,
    /// Simulated compute per 1-D FFT phase.
    pub fft_cost: f64,
}

/// The FT program.
#[derive(Debug, Clone)]
pub struct Ft {
    params: FtParams,
}

impl Ft {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: FtParams) -> Self {
        Self { params }
    }

    /// Bench-scale nominal configuration.
    #[must_use]
    pub fn nominal() -> Self {
        Self::new(FtParams {
            iters: 6,
            bytes_per_peer: 2048,
            fft_cost: 2.2e-3,
        })
    }
}

impl MpiProgram for Ft {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let transpose_comm = mpi.comm_dup(Comm::WORLD)?; // never freed
        for _ in 0..self.params.iters {
            mpi.compute(self.params.fft_cost)?;
            idioms::transpose(mpi, transpose_comm, self.params.bytes_per_peer)?;
            mpi.compute(self.params.fft_cost)?;
            idioms::transpose(mpi, transpose_comm, self.params.bytes_per_peer)?;
            let _ = mpi.allreduce_f64(Comm::WORLD, vec![1.0, 0.5], ReduceOp::Sum)?;
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "FT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn runs_and_leaks_transpose_comm() {
        let out = run_native(&SimConfig::new(4), &Ft::nominal());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.has_comm_leak(), "Table II: FT C-leak = Yes");
        assert!(!out.leaks.has_request_leak());
    }
}
