//! NAS Parallel Benchmarks 3.3 communication skeletons (Table II rows
//! BT CG DT EP FT IS LU MG).
//!
//! Each module reproduces the benchmark's *communication pattern* — the
//! determinant of interposition overhead and leak behaviour — not its
//! numerics. Compute phases are modeled with virtual-time `compute` calls
//! so the instrumented-vs-native slowdown (Table II) reflects the same
//! communication-to-computation ratios.

pub mod bt;
pub mod cg;
pub mod dt;
pub mod ep;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;

pub use bt::Bt;
pub use cg::Cg;
pub use dt::Dt;
pub use ep::Ep;
pub use ft::Ft;
pub use is::Is;
pub use lu::Lu;
pub use mg::Mg;

use dampi_mpi::MpiProgram;

/// All eight NAS skeletons with their nominal (bench-scale) parameters,
/// as `(name, program)` pairs — the Table II row iterator.
#[must_use]
pub fn all_nominal() -> Vec<(&'static str, Box<dyn MpiProgram>)> {
    vec![
        ("BT", Box::new(Bt::nominal()) as Box<dyn MpiProgram>),
        ("CG", Box::new(Cg::nominal())),
        ("DT", Box::new(Dt::nominal())),
        ("EP", Box::new(Ep::nominal())),
        ("FT", Box::new(Ft::nominal())),
        ("IS", Box::new(Is::nominal())),
        ("LU", Box::new(Lu::nominal())),
        ("MG", Box::new(Mg::nominal())),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn every_kernel_runs_clean_of_errors_at_small_scale() {
        for (name, prog) in all_nominal() {
            let out = run_native(&SimConfig::new(8), prog.as_ref());
            assert!(out.succeeded(), "{name}: {:?}", out.rank_errors);
        }
    }

    #[test]
    fn leak_profile_matches_table2() {
        // Table II: BT and FT leak communicators; the others are clean.
        for (name, prog) in all_nominal() {
            let out = run_native(&SimConfig::new(8), prog.as_ref());
            let expect_leak = matches!(name, "BT" | "FT");
            assert_eq!(
                out.leaks.has_comm_leak(),
                expect_leak,
                "{name} C-leak mismatch: {:?}",
                out.leaks
            );
            assert!(
                !out.leaks.has_request_leak(),
                "{name} must not leak requests"
            );
        }
    }
}
