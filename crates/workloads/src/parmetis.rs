//! A deterministic distributed graph-partitioner kernel standing in for
//! ParMETIS-3.1 (paper Fig. 5, Table I, Table II).
//!
//! ParMETIS is *fully deterministic* (no wildcard receives); what matters
//! for the paper's experiments is its **operation census**: roughly one
//! million MPI calls at 32 processes, with total operations growing ~2.5×
//! per process-doubling while per-process operations grow only ~1.3× and
//! collectives *per process* shrink as the job grows (Table I). This
//! kernel reproduces that shape: hypercube halo exchanges (log₂ np
//! neighbors per rank — per-proc work grows with log np, total with
//! np·log np) interleaved with coarsening reductions whose count decays
//! slowly with np.
//!
//! Table II also reports that DAMPI's resource checker flags a
//! **communicator leak** in the ParMETIS run; the kernel reproduces it by
//! leaving its workspace communicator unfreed (configurable).

use dampi_mpi::envelope::codec;
use dampi_mpi::{Comm, Mpi, MpiProgram, ReduceOp, Request, Result};

use crate::tags;

/// Parameters of the partitioner kernel.
#[derive(Debug, Clone, Copy)]
pub struct ParmetisParams {
    /// Coarsening rounds (each ends in a reduction).
    pub coarsen_rounds: usize,
    /// Halo exchanges per round.
    pub exchanges_per_round: usize,
    /// Bytes per halo message.
    pub msg_bytes: usize,
    /// Simulated partitioning compute per round (keeps the
    /// communication-to-computation ratio of the real code, which is what
    /// the Table II slowdown depends on).
    pub round_cost: f64,
    /// Leave the workspace communicator unfreed (the Table II C-leak).
    pub leak_comm: bool,
}

impl Default for ParmetisParams {
    fn default() -> Self {
        Self {
            coarsen_rounds: 8,
            exchanges_per_round: 4,
            msg_bytes: 256,
            round_cost: 4e-4,
            leak_comm: true,
        }
    }
}

impl ParmetisParams {
    /// Parameters calibrated to reproduce Table I's scaling shape at a
    /// manageable absolute scale (~1/20 of the paper's counts). `scale`
    /// multiplies all loop counts (1.0 = bench scale, use small values in
    /// tests).
    #[must_use]
    pub fn nominal(np: usize, scale: f64) -> Self {
        let d = (np.max(2) as f64).log2();
        // Collectives per proc decay ~0.88x per doubling (Table I):
        // rounds ∝ d^-0.2 relative to the np=8 baseline of ~40 rounds.
        let rounds = (40.0 * scale * (3.0 / d).powf(0.55)).ceil().max(1.0) as usize;
        // Per-proc p2p grows ~1.28x per doubling; neighbors already give
        // log2(np) growth (~1.2-1.4x per doubling in this range).
        let exchanges = (6.0 * scale).ceil().max(1.0) as usize;
        Self {
            coarsen_rounds: rounds,
            exchanges_per_round: exchanges,
            msg_bytes: 256,
            round_cost: 5e-4,
            leak_comm: true,
        }
    }
}

/// The partitioner kernel program.
#[derive(Debug, Clone)]
pub struct Parmetis {
    params: ParmetisParams,
}

impl Parmetis {
    /// Build from parameters.
    #[must_use]
    pub fn new(params: ParmetisParams) -> Self {
        Self { params }
    }

    /// Hypercube neighbors of `me` in a world of `np` ranks.
    fn neighbors(me: usize, np: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut bit = 1usize;
        while bit < np {
            let peer = me ^ bit;
            if peer < np {
                out.push(peer);
            }
            bit <<= 1;
        }
        out
    }
}

impl MpiProgram for Parmetis {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let np = mpi.world_size();
        let me = mpi.world_rank();
        let p = self.params;
        // Workspace communicator (ParMETIS duplicates the user's comm).
        let work = mpi.comm_dup(Comm::WORLD)?;
        let nbrs = Self::neighbors(me, np);
        let payload: Vec<u64> = (0..p.msg_bytes / 8).map(|i| (me + i) as u64).collect();
        let mut edge_cut = (me as u64 + 1) * 1000;
        for round in 0..p.coarsen_rounds {
            for _ in 0..p.exchanges_per_round {
                let mut reqs: Vec<Request> = Vec::with_capacity(2 * nbrs.len());
                for &nb in &nbrs {
                    reqs.push(mpi.irecv(work, nb as i32, tags::HALO)?);
                }
                for &nb in &nbrs {
                    reqs.push(mpi.isend(
                        work,
                        nb as i32,
                        tags::HALO,
                        codec::encode_u64s(&payload),
                    )?);
                }
                // ParMETIS consumes some halo replies eagerly (individual
                // waits) and batches the rest in one Waitall — this gives
                // Table I its ~3.6:1 Send-Recv:Wait call ratio.
                let eager = nbrs.len() / 2;
                for r in reqs.drain(..eager) {
                    mpi.wait(r)?;
                }
                mpi.waitall(&reqs)?;
            }
            mpi.compute(p.round_cost)?;
            // Coarsening step: global edge-cut reduction.
            let cut = mpi.allreduce_u64(work, vec![edge_cut], ReduceOp::Min)?;
            edge_cut = cut[0].saturating_sub(round as u64);
            // Occasional synchronization barrier between phases.
            if round % 4 == 3 {
                mpi.barrier(work)?;
            }
        }
        // Final gather of partition quality at root.
        let _ = mpi.gather(work, 0, codec::encode_u64(edge_cut))?;
        if !p.leak_comm {
            mpi.comm_free(work)?;
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "ParMETIS-3.1"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::interpose::StatsLayer;
    use dampi_mpi::stats::StatsCollector;
    use dampi_mpi::{run_native, run_with_layers, SimConfig};
    use std::sync::Arc;

    #[test]
    fn neighbors_form_hypercube() {
        assert_eq!(Parmetis::neighbors(0, 8), vec![1, 2, 4]);
        assert_eq!(Parmetis::neighbors(5, 8), vec![4, 7, 1]);
        // Non-power-of-two worlds drop out-of-range peers.
        assert_eq!(Parmetis::neighbors(5, 6), vec![4, 1]);
    }

    #[test]
    fn runs_clean_but_leaks_comm() {
        let prog = Parmetis::new(ParmetisParams {
            coarsen_rounds: 2,
            exchanges_per_round: 1,
            msg_bytes: 64,
            round_cost: 0.0,
            leak_comm: true,
        });
        let out = run_native(&SimConfig::new(4), &prog);
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.has_comm_leak(), "Table II: ParMETIS C-leak = Yes");
        assert!(!out.leaks.has_request_leak());
    }

    #[test]
    fn no_leak_when_freed() {
        let prog = Parmetis::new(ParmetisParams {
            coarsen_rounds: 1,
            exchanges_per_round: 1,
            msg_bytes: 64,
            round_cost: 0.0,
            leak_comm: false,
        });
        let out = run_native(&SimConfig::new(4), &prog);
        assert!(out.succeeded());
        assert!(out.leaks.is_clean(), "{:?}", out.leaks);
    }

    #[test]
    fn census_shape_total_grows_faster_than_per_proc() {
        let census = |np: usize| {
            let collector = StatsCollector::new();
            let prog = Parmetis::new(ParmetisParams::nominal(np, 0.2));
            let c2 = Arc::clone(&collector);
            let out = run_with_layers(&SimConfig::new(np), &prog, &move |_, pmpi| {
                Ok(Box::new(StatsLayer::new(pmpi, Arc::clone(&c2))))
            });
            assert!(out.succeeded());
            (collector.total().total(), collector.per_proc().total())
        };
        let (t8, p8) = census(8);
        let (t16, p16) = census(16);
        let total_growth = t16 as f64 / t8 as f64;
        let pp_growth = p16 as f64 / p8 as f64;
        assert!(
            total_growth > 1.7 && total_growth < 3.5,
            "total ops should grow ~2.5x per doubling, got {total_growth}"
        );
        assert!(
            pp_growth > 0.9 && pp_growth < 1.8,
            "per-proc ops should grow ~1.3x per doubling, got {pp_growth}"
        );
        assert!(total_growth > pp_growth);
    }

    #[test]
    fn collectives_per_proc_decrease_with_scale() {
        let coll_pp = |np: usize| {
            let collector = StatsCollector::new();
            let prog = Parmetis::new(ParmetisParams::nominal(np, 0.2));
            let c2 = Arc::clone(&collector);
            let out = run_with_layers(&SimConfig::new(np), &prog, &move |_, pmpi| {
                Ok(Box::new(StatsLayer::new(pmpi, Arc::clone(&c2))))
            });
            assert!(out.succeeded());
            collector.per_proc().collective
        };
        let c8 = coll_pp(8);
        let c32 = coll_pp(32);
        assert!(
            c32 <= c8,
            "collectives per proc must not grow (Table I): c8={c8} c32={c32}"
        );
    }

    #[test]
    fn deterministic_no_wildcards() {
        use dampi_core::DampiVerifier;
        let prog = Parmetis::new(ParmetisParams {
            coarsen_rounds: 1,
            exchanges_per_round: 1,
            msg_bytes: 64,
            round_cost: 0.0,
            leak_comm: false,
        });
        let report = DampiVerifier::new(SimConfig::new(4)).verify(&prog);
        assert_eq!(report.wildcards_analyzed, 0, "ParMETIS is deterministic");
        assert_eq!(report.interleavings, 1);
    }
}
