//! Master/slave matrix multiplication (paper §III: `matmul`).
//!
//! The master broadcasts `B`, divides the rows of `A` into ranges, and
//! hands one range to each slave. It then waits with a **wildcard
//! receive** for any slave to finish and immediately assigns it the next
//! range — the classic dynamically-load-balanced pattern whose wildcard
//! cascade defines the interleaving space studied in Fig. 6 and Fig. 8.
//!
//! The numeric work is real: slaves multiply their row range, the master
//! assembles `C = A×B` and verifies it against a serial product, so a
//! mis-matched schedule that corrupted data routing would be caught.

use bytes::Bytes;
use dampi_mpi::envelope::codec;
use dampi_mpi::proc_api::user_assert;
use dampi_mpi::{Comm, Mpi, MpiProgram, Result, ANY_SOURCE};

use crate::tags;

/// Parameters of the matmul workload.
#[derive(Debug, Clone, Copy)]
pub struct MatmulParams {
    /// Matrix dimension (small by default: the interleavings, not the
    /// flops, are the subject).
    pub n: usize,
    /// Row ranges handed out per slave on average (total tasks =
    /// `rounds_per_slave * (np - 1)`); each task completion is one
    /// wildcard receive at the master.
    pub rounds_per_slave: usize,
    /// Simulated seconds of compute per task.
    pub task_cost: f64,
    /// Acknowledgement mode: slaves verify their partial product locally
    /// against the serial reference and send an empty `RESULT` ack
    /// instead of returning row contents. The master tracks assignments
    /// by sender rank, so no payload content ever steers control flow —
    /// the shape that licenses payload-oblivious symmetry across slaves.
    pub ack_results: bool,
}

impl Default for MatmulParams {
    fn default() -> Self {
        Self {
            n: 8,
            rounds_per_slave: 2,
            task_cost: 1e-4,
            ack_results: false,
        }
    }
}

/// The matmul program.
#[derive(Debug, Clone)]
pub struct Matmul {
    params: MatmulParams,
    a: Vec<f64>,
    b: Vec<f64>,
}

impl Matmul {
    /// Build with deterministic pseudo-random matrices.
    #[must_use]
    pub fn new(params: MatmulParams) -> Self {
        let n = params.n;
        let gen = |i: usize| ((i * 2654435761) % 97) as f64 / 97.0 - 0.5;
        let a: Vec<f64> = (0..n * n).map(gen).collect();
        let b: Vec<f64> = (0..n * n).map(|i| gen(i + n * n)).collect();
        Self { params, a, b }
    }

    /// Serial reference product.
    fn reference(&self) -> Vec<f64> {
        let n = self.params.n;
        let mut c = vec![0.0; n * n];
        for i in 0..n {
            for k in 0..n {
                let aik = self.a[i * n + k];
                for j in 0..n {
                    c[i * n + j] += aik * self.b[k * n + j];
                }
            }
        }
        c
    }

    fn multiply_rows(&self, rows: std::ops::Range<usize>) -> Vec<f64> {
        let n = self.params.n;
        let mut out = vec![0.0; rows.len() * n];
        for (oi, i) in rows.clone().enumerate() {
            for k in 0..n {
                let aik = self.a[i * n + k];
                for j in 0..n {
                    out[oi * n + j] += aik * self.b[k * n + j];
                }
            }
        }
        out
    }

    /// Split row index space into `tasks` contiguous ranges.
    fn task_range(&self, task: usize, tasks: usize) -> std::ops::Range<usize> {
        let n = self.params.n;
        let lo = task * n / tasks;
        let hi = (task + 1) * n / tasks;
        lo..hi
    }

    fn run_master(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let np = mpi.world_size();
        let slaves = np - 1;
        let tasks = slaves * self.params.rounds_per_slave;
        let n = self.params.n;
        // Broadcast B.
        mpi.bcast(Comm::WORLD, 0, Some(codec::encode_f64s(&self.b)))?;
        let mut c = vec![0.0; n * n];
        // Ack mode: which task each slave is working on, keyed by rank.
        let mut working: Vec<Option<usize>> = vec![None; np];
        let mut acked = vec![false; tasks];
        let mut next_task = 0usize;
        // Prime each slave with one task.
        for (s, slot) in working.iter_mut().enumerate().skip(1) {
            mpi.send(
                Comm::WORLD,
                s as i32,
                tags::WORK,
                codec::encode_u64(next_task as u64),
            )?;
            *slot = Some(next_task);
            next_task += 1;
        }
        let mut completed = 0usize;
        while completed < tasks {
            // The wildcard receive: any slave may finish first.
            let (st, data) = mpi.recv(Comm::WORLD, ANY_SOURCE, tags::RESULT)?;
            if self.params.ack_results {
                // The ack carries no content; the sender rank alone says
                // which assignment completed. Dealing is static round-robin
                // (slave s owns tasks s-1, s-1+slaves, ...), so every rank's
                // op sequence — and the master's per-slave WORK payloads —
                // is identical on every schedule; the only nondeterminism
                // left is the ack arrival order this wildcard explores.
                let task = working[st.source].take();
                user_assert(task.is_some(), "matmul ack from an idle slave")?;
                let task = task.unwrap_or(0);
                acked[task] = true;
                completed += 1;
                let next = task + slaves;
                if next < tasks {
                    mpi.send(
                        Comm::WORLD,
                        st.source as i32,
                        tags::WORK,
                        codec::encode_u64(next as u64),
                    )?;
                    working[st.source] = Some(next);
                } else {
                    mpi.send(Comm::WORLD, st.source as i32, tags::DONE, Bytes::new())?;
                }
                continue;
            }
            let vals = codec::decode_f64s(&data);
            let task = vals[0] as usize;
            let range = self.task_range(task, tasks);
            for (oi, i) in range.enumerate() {
                for j in 0..n {
                    c[i * n + j] = vals[1 + oi * n + j];
                }
            }
            completed += 1;
            if next_task < tasks {
                mpi.send(
                    Comm::WORLD,
                    st.source as i32,
                    tags::WORK,
                    codec::encode_u64(next_task as u64),
                )?;
                working[st.source] = Some(next_task);
                next_task += 1;
            } else {
                mpi.send(Comm::WORLD, st.source as i32, tags::DONE, Bytes::new())?;
            }
        }
        if self.params.ack_results {
            // Slaves verified contents locally; the master checks only
            // that every assignment came back.
            return user_assert(
                acked.into_iter().all(|a| a),
                "matmul ack bookkeeping lost a task",
            );
        }
        // Verify the assembled product against the serial reference.
        let reference = self.reference();
        let ok = c.iter().zip(&reference).all(|(x, y)| (x - y).abs() < 1e-9);
        user_assert(ok, "matmul result mismatch: a schedule corrupted routing")
    }

    fn run_slave(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let np = mpi.world_size();
        let slaves = np - 1;
        let tasks = slaves * self.params.rounds_per_slave;
        mpi.bcast(Comm::WORLD, 0, None)?;
        loop {
            let (st, data) = mpi.recv(Comm::WORLD, 0, dampi_mpi::ANY_TAG)?;
            if st.tag == tags::DONE {
                break;
            }
            let task = codec::decode_u64(&data) as usize;
            let range = self.task_range(task, tasks);
            mpi.compute(self.params.task_cost)?;
            let partial = self.multiply_rows(range.clone());
            if self.params.ack_results {
                // Verify here, against the rows the serial reference
                // assigns to this task, and ack with an empty message.
                let n = self.params.n;
                let reference = self.reference();
                let ok = partial
                    .iter()
                    .zip(&reference[range.start * n..range.end * n])
                    .all(|(x, y)| (x - y).abs() < 1e-9);
                user_assert(ok, "matmul slave-side partial product mismatch")?;
                mpi.send(Comm::WORLD, 0, tags::RESULT, Bytes::new())?;
            } else {
                let mut payload = Vec::with_capacity(1 + partial.len());
                payload.push(task as f64);
                payload.extend_from_slice(&partial);
                mpi.send(Comm::WORLD, 0, tags::RESULT, codec::encode_f64s(&payload))?;
            }
        }
        Ok(())
    }
}

impl MpiProgram for Matmul {
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        if mpi.world_size() < 2 {
            return Ok(());
        }
        if mpi.world_rank() == 0 {
            self.run_master(mpi)
        } else {
            self.run_slave(mpi)
        }
    }

    fn name(&self) -> &str {
        if self.params.ack_results {
            "matmul_ack"
        } else {
            "matmul"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, SimConfig};

    #[test]
    fn reference_product_is_correct_for_identity_like() {
        let m = Matmul::new(MatmulParams {
            n: 4,
            ..Default::default()
        });
        let r = m.reference();
        assert_eq!(r.len(), 16);
    }

    #[test]
    fn runs_clean_natively() {
        let m = Matmul::new(MatmulParams::default());
        let out = run_native(&SimConfig::new(4), &m);
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean(), "{:?}", out.leaks);
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let m = Matmul::new(MatmulParams::default());
        let out = run_native(&SimConfig::new(1), &m);
        assert!(out.succeeded());
    }

    #[test]
    fn many_rounds_many_slaves() {
        let m = Matmul::new(MatmulParams {
            n: 12,
            rounds_per_slave: 3,
            task_cost: 0.0,
            ..Default::default()
        });
        let out = run_native(&SimConfig::new(7), &m);
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }

    #[test]
    fn ack_mode_runs_clean_natively() {
        let m = Matmul::new(MatmulParams {
            ack_results: true,
            ..Default::default()
        });
        assert_eq!(m.name(), "matmul_ack");
        let out = run_native(&SimConfig::new(4), &m);
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean(), "{:?}", out.leaks);
    }

    #[test]
    fn task_ranges_partition_rows() {
        let m = Matmul::new(MatmulParams {
            n: 10,
            rounds_per_slave: 3,
            ..Default::default()
        });
        let tasks = 6;
        let mut covered = vec![false; 10];
        for t in 0..tasks {
            for i in m.task_range(t, tasks) {
                assert!(!covered[i], "row {i} covered twice");
                covered[i] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }
}
