//! Generated MPI programs: the serialisable workload format the
//! `dampi-fuzz` generator produces and the differential oracle replays.
//!
//! A [`GenSpec`] is a *global total order* of MPI events; each rank
//! executes the projection of that order onto itself. The format is plain
//! data (serde JSON), which is what makes fuzzing practical end-to-end:
//!
//! * the generator emits specs deterministically from a seed,
//! * the shrinker minimises a disagreeing spec by deleting events and
//!   re-running the oracle on the *data*, and
//! * a shrunk reproducer is committed under `fixtures/fuzz/` and replayed
//!   forever as a regression test ([`fixtures`]).
//!
//! Deadlock freedom is by construction (unless a bug is injected): the
//! generator only emits a blocking point once enough compatible sends
//! precede it in the global order, and collectives occupy the same global
//! position on every rank. See DESIGN.md §15 for the grammar and the
//! inductive argument.

use bytes::Bytes;
use dampi_mpi::envelope::codec;
use dampi_mpi::proc_api::{user_assert, Mpi};
use dampi_mpi::{Comm, MpiProgram, Result, Tag, ANY_SOURCE};
use serde::{Deserialize, Serialize};

/// Injected bug class, recorded as a known-answer label on the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BugLabel {
    /// No injected bug: every mode must report the program clean.
    Clean,
    /// A send was deleted: some receive starves on every schedule.
    Deadlock,
    /// One rank calls `barrier` where the others call a `bcast`.
    Mismatch,
    /// A duplicated communicator is never freed and a request is
    /// abandoned. (Unreceived *messages* are not part of this label: the
    /// verifier's finalize-time drain consumes them for late-message
    /// analysis, so they never appear in an instrumented leak census.)
    Leak,
    /// A wildcard receive asserts on a poison payload that only one
    /// candidate sender carries: an error on *some* schedules only.
    Race,
    /// The program is MPI-clean but violates its companion session
    /// protocol (wrong message order, wrong peer, or an early exit).
    /// Injected only by the protocol-template generator in `dampi-fuzz`,
    /// which pairs every such program with the spec it must fail against.
    Conformance,
}

impl BugLabel {
    /// Stable lower-case name used in verdict JSON.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BugLabel::Clean => "clean",
            BugLabel::Deadlock => "deadlock",
            BugLabel::Mismatch => "mismatch",
            BugLabel::Leak => "leak",
            BugLabel::Race => "race",
            BugLabel::Conformance => "conformance",
        }
    }
}

/// Source specification of a generated receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SrcSpec {
    /// Deterministic receive from one rank.
    Named(usize),
    /// `MPI_ANY_SOURCE` — opens a DAMPI epoch.
    Wildcard,
}

/// How a generated receive is issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecvVia {
    /// `recv` — blocks in place.
    Blocking,
    /// `irecv` — posted here, completed by a later [`GenOp::Wait`].
    Irecv,
    /// `probe` then `recv` of the probed envelope.
    ProbeRecv,
}

/// Collective flavour at a synchronisation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectiveKind {
    /// `barrier`.
    Barrier,
    /// `bcast` from `root`.
    Bcast,
    /// `allreduce_u64` (max).
    Allreduce,
    /// `gather` to `root`.
    Gather,
}

/// One event in the global total order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GenOp {
    /// `from` posts an eager send (`isend` + immediate `wait`).
    Send {
        /// Sending rank.
        from: usize,
        /// Destination rank.
        to: usize,
        /// Message tag.
        tag: Tag,
        /// Communicator slot (0 = `MPI_COMM_WORLD`).
        comm: usize,
        /// Payload value (the oracle's race poison rides here).
        value: u64,
    },
    /// `rank` receives.
    Recv {
        /// Receiving rank.
        rank: usize,
        /// Named or wildcard source.
        src: SrcSpec,
        /// Message tag.
        tag: Tag,
        /// Communicator slot.
        comm: usize,
        /// Blocking, nonblocking, or probe-then-recv.
        via: RecvVia,
        /// When set, `user_assert(payload != value)` after completion.
        assert_ne: Option<u64>,
    },
    /// `rank` completes the `slot`-th `Irecv` it posted.
    Wait {
        /// Waiting rank.
        rank: usize,
        /// Index among this rank's `Irecv` receives, in posting order.
        slot: usize,
    },
    /// Global synchronisation point — every rank participates.
    Collective {
        /// Collective flavour.
        kind: CollectiveKind,
        /// Root rank (ignored for barrier/allreduce).
        root: usize,
        /// Communicator slot.
        comm: usize,
        /// Injected mismatch: this rank calls `barrier` instead.
        mismatch_rank: Option<usize>,
    },
    /// Collectively duplicate `MPI_COMM_WORLD` into slot `id`.
    CommDup {
        /// Communicator slot the duplicate is bound to.
        id: usize,
    },
    /// Collectively split `MPI_COMM_WORLD` (one colour, key = rank) into
    /// slot `id` — the full group, so slot ranks equal world ranks.
    CommSplit {
        /// Communicator slot the split is bound to.
        id: usize,
    },
    /// Collectively free the communicator in slot `id`.
    CommFree {
        /// Communicator slot to free.
        id: usize,
    },
    /// `rank` posts an `irecv` that is never completed (request leak).
    LeakRequest {
        /// Leaking rank.
        rank: usize,
        /// Tag of the abandoned receive (nothing sends it).
        tag: Tag,
        /// Communicator slot.
        comm: usize,
    },
}

/// A generated MPI program: metadata plus the global event order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenSpec {
    /// Program name (shows up in verification reports).
    pub name: String,
    /// World size the spec was generated for.
    pub nprocs: usize,
    /// Generator seed (0 for hand-written fixtures).
    pub seed: u64,
    /// Known-answer label of the injected bug, if any.
    pub bug: BugLabel,
    /// The global total order of events.
    pub ops: Vec<GenOp>,
}

impl GenSpec {
    /// Serialise to pretty JSON (the committed fixture format).
    ///
    /// # Panics
    /// Never: the spec is plain data.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("GenSpec serialises")
    }

    /// Parse a spec from JSON.
    ///
    /// # Errors
    /// Returns the serde error when `s` is not a valid spec.
    pub fn from_json(s: &str) -> std::result::Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Number of wildcard receives/probes (DAMPI epochs) in the spec.
    #[must_use]
    pub fn wildcard_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    GenOp::Recv {
                        src: SrcSpec::Wildcard,
                        ..
                    }
                )
            })
            .count()
    }
}

/// Interpreter: runs a [`GenSpec`] as an [`MpiProgram`].
#[derive(Debug, Clone)]
pub struct GenProgram {
    /// The spec being interpreted.
    pub spec: GenSpec,
}

impl GenProgram {
    /// Wrap a spec for execution.
    #[must_use]
    pub fn new(spec: GenSpec) -> Self {
        Self { spec }
    }

    fn resolve_comm(comms: &[Option<Comm>], slot: usize) -> Result<Comm> {
        comms
            .get(slot)
            .copied()
            .flatten()
            .ok_or_else(|| dampi_mpi::MpiError::ToolProtocol {
                detail: format!("generated spec references unbound comm slot {slot}"),
            })
    }

    fn check_payload(data: &Bytes, assert_ne: Option<u64>) -> Result<()> {
        if let Some(poison) = assert_ne {
            let got = codec::decode_u64(data);
            user_assert(got != poison, format!("received poison payload {got}"))?;
        }
        Ok(())
    }
}

impl MpiProgram for GenProgram {
    fn name(&self) -> &str {
        &self.spec.name
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, mpi: &mut dyn Mpi) -> Result<()> {
        let me = mpi.world_rank();
        // Communicator slots: 0 is always WORLD; the rest bind on dup/split.
        let mut comms: Vec<Option<Comm>> = vec![None; 16];
        comms[0] = Some(Comm::WORLD);
        // Posted-irecv slots for this rank: (request, assert_ne), taken by Wait.
        let mut slots: Vec<Option<(dampi_mpi::Request, Option<u64>)>> = Vec::new();
        for op in &self.spec.ops {
            match *op {
                GenOp::Send {
                    from,
                    to,
                    tag,
                    comm,
                    value,
                } => {
                    if from == me {
                        let c = Self::resolve_comm(&comms, comm)?;
                        mpi.send(
                            c,
                            i32::try_from(to).unwrap_or(0),
                            tag,
                            codec::encode_u64(value),
                        )?;
                    }
                }
                GenOp::Recv {
                    rank,
                    src,
                    tag,
                    comm,
                    via,
                    assert_ne,
                } => {
                    if rank != me {
                        continue;
                    }
                    let c = Self::resolve_comm(&comms, comm)?;
                    let src_spec = match src {
                        SrcSpec::Named(s) => i32::try_from(s).unwrap_or(0),
                        SrcSpec::Wildcard => ANY_SOURCE,
                    };
                    match via {
                        RecvVia::Blocking => {
                            let (_, data) = mpi.recv(c, src_spec, tag)?;
                            Self::check_payload(&data, assert_ne)?;
                        }
                        RecvVia::Irecv => {
                            let req = mpi.irecv(c, src_spec, tag)?;
                            slots.push(Some((req, assert_ne)));
                        }
                        RecvVia::ProbeRecv => {
                            let info = mpi.probe(c, src_spec, tag)?;
                            let (_, data) =
                                mpi.recv(c, i32::try_from(info.src).unwrap_or(0), info.tag)?;
                            Self::check_payload(&data, assert_ne)?;
                        }
                    }
                }
                GenOp::Wait { rank, slot } => {
                    if rank != me {
                        continue;
                    }
                    let entry = slots.get_mut(slot).and_then(Option::take).ok_or_else(|| {
                        dampi_mpi::MpiError::ToolProtocol {
                            detail: format!("rank {me} waits unposted/duplicate slot {slot}"),
                        }
                    })?;
                    let (req, assert_ne) = entry;
                    let (_, data) = mpi.wait(req)?;
                    Self::check_payload(&data, assert_ne)?;
                }
                GenOp::Collective {
                    kind,
                    root,
                    comm,
                    mismatch_rank,
                } => {
                    let c = Self::resolve_comm(&comms, comm)?;
                    if mismatch_rank == Some(me) {
                        // Injected collective mismatch: the odd rank out
                        // calls barrier at this synchronisation point.
                        mpi.barrier(c)?;
                        continue;
                    }
                    match kind {
                        CollectiveKind::Barrier => mpi.barrier(c)?,
                        CollectiveKind::Bcast => {
                            let payload = if me == root {
                                Some(codec::encode_u64(77))
                            } else {
                                None
                            };
                            let _ = mpi.bcast(c, root, payload)?;
                        }
                        CollectiveKind::Allreduce => {
                            let _ =
                                mpi.allreduce_u64(c, vec![me as u64], dampi_mpi::ReduceOp::Max)?;
                        }
                        CollectiveKind::Gather => {
                            let _ = mpi.gather(c, root, codec::encode_u64(me as u64))?;
                        }
                    }
                }
                GenOp::CommDup { id } => {
                    let c = mpi.comm_dup(Comm::WORLD)?;
                    comms[id] = Some(c);
                }
                GenOp::CommSplit { id } => {
                    // One colour, key = world rank: the full group survives
                    // and slot ranks equal world ranks.
                    let c = mpi.comm_split(Comm::WORLD, 0, me as i64)?;
                    comms[id] = c;
                }
                GenOp::CommFree { id } => {
                    let c = Self::resolve_comm(&comms, id)?;
                    comms[id] = None;
                    mpi.comm_free(c)?;
                }
                GenOp::LeakRequest { rank, tag, comm } => {
                    if rank == me {
                        let c = Self::resolve_comm(&comms, comm)?;
                        let _abandoned = mpi.irecv(c, ANY_SOURCE, tag)?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Committed fuzzer-shrunk regression fixtures, embedded at compile time.
pub mod fixtures {
    use super::GenSpec;

    /// The `PiggybackMechanism::SeparateMessage` mispairing reproducer
    /// (interleaved wildcard + named receives on one `(source, tag, comm)`
    /// stream — see `dampi_core::config` and DESIGN.md §15.4).
    #[must_use]
    pub fn separate_message_mispair() -> GenSpec {
        load(include_str!(
            "../fixtures/fuzz/separate_message_mispair.json"
        ))
    }

    /// The collective-ordering phantom-deadlock reproducer: a wildcard
    /// receive before a `Gather` and a send to the same stream after it.
    /// When the causal model tracked only the collective's dataflow
    /// (all-to-root) instead of the runtime's full rendezvous, the
    /// post-gather send looked concurrent with the pre-gather receive,
    /// and every verifier mode forced an unrealizable replay that
    /// deadlocked — reported as a bug in this clean program (shrunk from
    /// `dampi-cli fuzz` seed 66).
    #[must_use]
    pub fn collective_phantom_deadlock() -> GenSpec {
        load(include_str!(
            "../fixtures/fuzz/collective_phantom_deadlock.json"
        ))
    }

    /// Every committed fixture, for corpus-style sweeps.
    #[must_use]
    pub fn all() -> Vec<GenSpec> {
        vec![separate_message_mispair(), collective_phantom_deadlock()]
    }

    fn load(s: &str) -> GenSpec {
        GenSpec::from_json(s).expect("committed fixture parses")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ping(via: RecvVia) -> GenSpec {
        let mut ops = vec![
            GenOp::Send {
                from: 1,
                to: 0,
                tag: 5,
                comm: 0,
                value: 42,
            },
            GenOp::Recv {
                rank: 0,
                src: SrcSpec::Wildcard,
                tag: 5,
                comm: 0,
                via,
                assert_ne: None,
            },
        ];
        if via == RecvVia::Irecv {
            ops.push(GenOp::Wait { rank: 0, slot: 0 });
        }
        GenSpec {
            name: "gen_ping".into(),
            nprocs: 2,
            seed: 0,
            bug: BugLabel::Clean,
            ops,
        }
    }

    #[test]
    fn json_round_trip() {
        let spec = ping(RecvVia::Irecv);
        let back = GenSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
        assert_eq!(spec.wildcard_count(), 1);
    }

    #[test]
    fn interpreter_runs_clean() {
        use dampi_mpi::{run_native, MatchPolicy, SimConfig};
        for via in [RecvVia::Blocking, RecvVia::Irecv, RecvVia::ProbeRecv] {
            let spec = ping(via);
            let outcome = run_native(
                &SimConfig::new(spec.nprocs).with_policy(MatchPolicy::LowestRank),
                &GenProgram::new(spec),
            );
            assert!(outcome.program_bugs().is_empty(), "via {via:?}");
            assert!(outcome.leaks.is_clean(), "via {via:?}");
        }
    }

    #[test]
    fn fixtures_parse_and_run() {
        use dampi_mpi::{run_native, MatchPolicy, SimConfig};
        for spec in fixtures::all() {
            let outcome = run_native(
                &SimConfig::new(spec.nprocs).with_policy(MatchPolicy::LowestRank),
                &GenProgram::new(spec.clone()),
            );
            assert!(
                outcome.program_bugs().is_empty(),
                "fixture {} should be clean natively",
                spec.name
            );
        }
    }
}
