//! Shared communication idioms used by the NAS and SpecMPI skeletons.

use dampi_mpi::envelope::codec;
use dampi_mpi::{Comm, Mpi, Request, Result, Tag, ANY_SOURCE};

/// Factor `np` into the most square `(rows, cols)` grid.
#[must_use]
pub fn grid_dims(np: usize) -> (usize, usize) {
    let mut best = (1, np);
    let mut r = 1;
    while r * r <= np {
        if np.is_multiple_of(r) {
            best = (r, np / r);
        }
        r += 1;
    }
    best
}

/// Payload of `bytes` length (rounded up to whole u64 words).
#[must_use]
pub fn payload(bytes: usize, seed: usize) -> bytes::Bytes {
    let words = bytes.div_ceil(8).max(1);
    codec::encode_u64s(&(0..words).map(|i| (seed + i) as u64).collect::<Vec<_>>())
}

/// Periodic ring shift: send to `(me+1) % n`, receive from `(me-1+n) % n`.
pub fn ring_shift(mpi: &mut dyn Mpi, comm: Comm, tag: Tag, bytes: usize) -> Result<()> {
    let n = mpi.comm_size(comm)?;
    if n < 2 {
        return Ok(());
    }
    let me = mpi.comm_rank(comm)?;
    let next = ((me + 1) % n) as i32;
    let prev = ((me + n - 1) % n) as i32;
    mpi.sendrecv(comm, next, tag, payload(bytes, me), prev, tag)?;
    Ok(())
}

/// Non-periodic 1-D halo: exchange with both neighbors where they exist.
pub fn halo_1d(mpi: &mut dyn Mpi, comm: Comm, tag: Tag, bytes: usize) -> Result<()> {
    let n = mpi.comm_size(comm)?;
    let me = mpi.comm_rank(comm)?;
    let mut reqs: Vec<Request> = Vec::with_capacity(4);
    if me > 0 {
        reqs.push(mpi.irecv(comm, (me - 1) as i32, tag)?);
        reqs.push(mpi.isend(comm, (me - 1) as i32, tag, payload(bytes, me))?);
    }
    if me + 1 < n {
        reqs.push(mpi.irecv(comm, (me + 1) as i32, tag)?);
        reqs.push(mpi.isend(comm, (me + 1) as i32, tag, payload(bytes, me))?);
    }
    mpi.waitall(&reqs)?;
    Ok(())
}

/// Hypercube butterfly: one sendrecv per dimension (`log2(n)` rounds).
pub fn butterfly(mpi: &mut dyn Mpi, comm: Comm, tag: Tag, bytes: usize) -> Result<()> {
    let n = mpi.comm_size(comm)?;
    let me = mpi.comm_rank(comm)?;
    let mut bit = 1usize;
    while bit < n {
        let peer = me ^ bit;
        if peer < n {
            mpi.sendrecv(comm, peer as i32, tag, payload(bytes, me), peer as i32, tag)?;
        }
        bit <<= 1;
    }
    Ok(())
}

/// Full transpose: alltoall of `bytes` to every peer.
pub fn transpose(mpi: &mut dyn Mpi, comm: Comm, bytes: usize) -> Result<()> {
    let n = mpi.comm_size(comm)?;
    let me = mpi.comm_rank(comm)?;
    let out: Vec<bytes::Bytes> = (0..n).map(|j| payload(bytes, me * n + j)).collect();
    let _ = mpi.alltoall(comm, out)?;
    Ok(())
}

/// 2-D halo on a `rows × cols` grid embedded in `comm` (row-major ranks).
pub fn halo_2d(mpi: &mut dyn Mpi, comm: Comm, tag: Tag, bytes: usize) -> Result<()> {
    let n = mpi.comm_size(comm)?;
    let me = mpi.comm_rank(comm)?;
    let (rows, cols) = grid_dims(n);
    let (r, c) = (me / cols, me % cols);
    let mut reqs: Vec<Request> = Vec::with_capacity(8);
    let mut neighbors = Vec::new();
    if r > 0 {
        neighbors.push((r - 1) * cols + c);
    }
    if r + 1 < rows {
        neighbors.push((r + 1) * cols + c);
    }
    if c > 0 {
        neighbors.push(r * cols + c - 1);
    }
    if c + 1 < cols {
        neighbors.push(r * cols + c + 1);
    }
    for &nb in &neighbors {
        reqs.push(mpi.irecv(comm, nb as i32, tag)?);
    }
    for &nb in &neighbors {
        reqs.push(mpi.isend(comm, nb as i32, tag, payload(bytes, me))?);
    }
    mpi.waitall(&reqs)?;
    Ok(())
}

/// 2-D halo whose receives use `MPI_ANY_SOURCE`: the wildcard-gather idiom
/// of codes like 104.milc, where halo contributions are consumed in
/// arrival order. Each wildcard receive is a DAMPI epoch.
pub fn halo_2d_wildcard(mpi: &mut dyn Mpi, comm: Comm, tag: Tag, bytes: usize) -> Result<usize> {
    let n = mpi.comm_size(comm)?;
    let me = mpi.comm_rank(comm)?;
    let (rows, cols) = grid_dims(n);
    let (r, c) = (me / cols, me % cols);
    let mut neighbors = Vec::new();
    if r > 0 {
        neighbors.push((r - 1) * cols + c);
    }
    if r + 1 < rows {
        neighbors.push((r + 1) * cols + c);
    }
    if c > 0 {
        neighbors.push(r * cols + c - 1);
    }
    if c + 1 < cols {
        neighbors.push(r * cols + c + 1);
    }
    let mut send_reqs: Vec<Request> = Vec::with_capacity(neighbors.len());
    for &nb in &neighbors {
        send_reqs.push(mpi.isend(comm, nb as i32, tag, payload(bytes, me))?);
    }
    for _ in &neighbors {
        let _ = mpi.recv(comm, ANY_SOURCE, tag)?;
    }
    mpi.waitall(&send_reqs)?;
    Ok(neighbors.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, FnProgram, SimConfig};

    #[test]
    fn grid_dims_most_square() {
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(12), (3, 4));
        assert_eq!(grid_dims(7), (1, 7));
        assert_eq!(grid_dims(1), (1, 1));
    }

    #[test]
    fn payload_rounds_up() {
        assert_eq!(payload(1, 0).len(), 8);
        assert_eq!(payload(9, 0).len(), 16);
    }

    fn run_idiom(n: usize, f: impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync + 'static) {
        let out = run_native(&SimConfig::new(n), &FnProgram(f));
        assert!(out.succeeded(), "{:?}", out.rank_errors);
        assert!(out.leaks.is_clean(), "{:?}", out.leaks);
    }

    #[test]
    fn ring_completes() {
        run_idiom(5, |mpi| ring_shift(mpi, Comm::WORLD, 1, 64));
    }

    #[test]
    fn halo_1d_completes() {
        run_idiom(6, |mpi| halo_1d(mpi, Comm::WORLD, 1, 64));
    }

    #[test]
    fn butterfly_completes_power_of_two_and_ragged() {
        run_idiom(8, |mpi| butterfly(mpi, Comm::WORLD, 1, 32));
        run_idiom(6, |mpi| butterfly(mpi, Comm::WORLD, 1, 32));
    }

    #[test]
    fn transpose_completes() {
        run_idiom(4, |mpi| transpose(mpi, Comm::WORLD, 16));
    }

    #[test]
    fn halo_2d_completes() {
        run_idiom(12, |mpi| halo_2d(mpi, Comm::WORLD, 2, 64));
    }

    #[test]
    fn halo_2d_wildcard_completes_and_counts() {
        run_idiom(9, |mpi| {
            let nd = halo_2d_wildcard(mpi, Comm::WORLD, 2, 64)?;
            assert!(nd >= 2, "3x3 grid has 2-4 neighbors");
            Ok(())
        });
    }

    #[test]
    fn singleton_world_is_noop() {
        run_idiom(1, |mpi| {
            ring_shift(mpi, Comm::WORLD, 1, 8)?;
            halo_1d(mpi, Comm::WORLD, 1, 8)?;
            butterfly(mpi, Comm::WORLD, 1, 8)?;
            halo_2d(mpi, Comm::WORLD, 1, 8)
        });
    }
}
