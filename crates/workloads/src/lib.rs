//! Benchmark workloads for the DAMPI reproduction (paper §III).
//!
//! Every workload is an [`MpiProgram`](dampi_mpi::MpiProgram) against the
//! simulator API, reproducing the *communication skeleton* of the paper's
//! evaluation programs:
//!
//! * [`matmul`] — master/slave matrix multiplication with wildcard
//!   receives (Fig. 6, Fig. 8).
//! * [`parmetis`] — a deterministic distributed-partitioner kernel whose
//!   operation census follows ParMETIS-3.1's profile (Fig. 5, Table I,
//!   Table II).
//! * [`adlb`] — an asynchronous dynamic load-balancing library with
//!   heavily non-deterministic server loops (Fig. 9).
//! * [`nas`] — NAS-PB 3.3 communication skeletons (BT CG DT EP FT IS LU
//!   MG; Table II).
//! * [`spec`] — SpecMPI2007 skeletons (104.milc 107.leslie3d 113.GemsFDTD
//!   126.lammps 130.socorro 137.lu; Table II).
//! * [`patterns`] — the paper's figure-sized examples (Fig. 3, Fig. 4,
//!   Fig. 10) plus deadlock/leak injection programs for failure testing.
//! * [`generated`] — the serialisable program format produced by the
//!   `dampi-fuzz` generator, its interpreter, and committed shrunk
//!   regression fixtures.
//! * [`protocols`] — committed session-protocol specs (the `.protocol`
//!   files consumed by `dampi-cli analyze --protocol`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adlb;
pub mod generated;
pub mod idioms;
pub mod matmul;
pub mod nas;
pub mod parmetis;
pub mod patterns;
pub mod protocols;
pub mod spec;

/// Message tags shared by the workloads (kept distinct for readability).
pub mod tags {
    /// Work assignment from a master/server.
    pub const WORK: i32 = 10;
    /// Computed result back to a master.
    pub const RESULT: i32 = 11;
    /// Work request (ADLB `GET`).
    pub const GET: i32 = 12;
    /// Work deposit (ADLB `PUT`).
    pub const PUT: i32 = 13;
    /// Termination notice.
    pub const DONE: i32 = 14;
    /// Halo-exchange payload.
    pub const HALO: i32 = 20;
    /// Pipeline-wavefront payload.
    pub const SWEEP: i32 = 21;
}
