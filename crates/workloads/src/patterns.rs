//! The paper's figure-sized example programs, plus failure-injection
//! programs used by the test suite.

use bytes::Bytes;
use dampi_mpi::envelope::codec;
use dampi_mpi::proc_api::user_assert;
use dampi_mpi::{Comm, FnProgram, Mpi, Result, ANY_SOURCE, ANY_TAG};

/// Paper Fig. 3: three processes; P1's wildcard receive can match P0
/// (value 22, fine) or P2 (value 33, triggers the application error).
/// A barrier separates the sends from the receive so the choice is purely
/// the runtime's — the bias DAMPI's replay overrides.
#[must_use]
pub fn fig3() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                mpi.send(Comm::WORLD, 1, 22, codec::encode_u64(22))?;
                mpi.barrier(Comm::WORLD)?;
            }
            2 => {
                mpi.send(Comm::WORLD, 1, 22, codec::encode_u64(33))?;
                mpi.barrier(Comm::WORLD)?;
            }
            1 => {
                mpi.barrier(Comm::WORLD)?;
                let (_, data) = mpi.recv(Comm::WORLD, ANY_SOURCE, 22)?;
                let x = codec::decode_u64(&data);
                user_assert(x != 33, "x == 33")?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 22)?;
            }
            // Extra ranks in larger worlds only synchronize.
            _ => mpi.barrier(Comm::WORLD)?,
        }
        Ok(())
    })
}

/// Paper Fig. 4: the cross-coupled four-process pattern on which Lamport
/// clocks lose completeness (§II-F). P1 and P2 each post a wildcard
/// receive whose "natural" matches are P0 and P3; each then forwards to
/// the other, creating concurrent sends whose Lamport projections are
/// indistinguishable from causally-later ones.
#[must_use]
pub fn fig4_cross_coupled() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                mpi.send(Comm::WORLD, 1, 0, Bytes::from_static(b"p0"))?;
            }
            1 => {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
                mpi.send(Comm::WORLD, 2, 0, Bytes::from_static(b"p1"))?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
            }
            2 => {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
                mpi.send(Comm::WORLD, 1, 0, Bytes::from_static(b"p2"))?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
            }
            3 => {
                mpi.send(Comm::WORLD, 2, 0, Bytes::from_static(b"p3"))?;
            }
            // Ranks beyond the four-process pattern sit out.
            _ => {}
        }
        Ok(())
    })
}

/// Two symmetric wildcard consumers (ranks 1 and 3) each receive two
/// messages, one from each producer (ranks 0 and 2). The producers finish
/// sending before a global barrier, so — like [`fig3`] — every wildcard's
/// candidate set is fixed and the exploration frontier is deterministic
/// under `MatchPolicy::LowestRank`. By symmetry the two consumers record
/// their epochs at *equal* Lamport clocks, so a guided replay that branches
/// on one consumer's epoch necessarily leaves the other consumer's
/// equal-clock epoch unprescribed: a deterministic prefix divergence of the
/// §II-F imprecision kind, on every replay of that branch.
#[must_use]
pub fn symmetric_racers() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 | 2 => {
                mpi.send(Comm::WORLD, 1, 7, Bytes::from_static(b"race"))?;
                mpi.send(Comm::WORLD, 3, 7, Bytes::from_static(b"race"))?;
                mpi.barrier(Comm::WORLD)?;
            }
            1 | 3 => {
                mpi.barrier(Comm::WORLD)?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 7)?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 7)?;
            }
            _ => mpi.barrier(Comm::WORLD)?,
        }
        Ok(())
    })
}

/// Paper Fig. 10 / §V: an `Irecv(*)` whose clock is transmitted (via a
/// barrier) before its `Wait`, making P2's post-barrier send an undetected
/// competitor. Crashes (application error) when that send wins.
#[must_use]
pub fn fig10_unsafe() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                mpi.send(Comm::WORLD, 1, 22, codec::encode_u64(22))?;
                mpi.barrier(Comm::WORLD)?;
            }
            1 => {
                let req = mpi.irecv(Comm::WORLD, ANY_SOURCE, 22)?;
                mpi.barrier(Comm::WORLD)?;
                let (_, data) = mpi.wait(req)?;
                let x = codec::decode_u64(&data);
                user_assert(x != 33, "x == 33 (fig10 crash)")?;
                // Drain whichever message lost the race.
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 22)?;
            }
            2 => {
                mpi.barrier(Comm::WORLD)?;
                mpi.send(Comm::WORLD, 1, 22, codec::encode_u64(33))?;
            }
            _ => {
                mpi.barrier(Comm::WORLD)?;
            }
        }
        Ok(())
    })
}

/// A head-to-head deadlock: both ranks receive before sending.
#[must_use]
pub fn deadlock_head_to_head() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        let peer = (mpi.world_rank() ^ 1) as i32;
        if peer as usize >= mpi.world_size() {
            return Ok(());
        }
        let (_, _) = mpi.recv(Comm::WORLD, peer, 0)?;
        mpi.send(Comm::WORLD, peer, 0, Bytes::from_static(b"never"))?;
        Ok(())
    })
}

/// A schedule-dependent deadlock: the master mishandles the case where
/// the second worker's result arrives first (real-world bug shape: an
/// index keyed by arrival order instead of rank).
#[must_use]
pub fn deadlock_on_alternate_schedule(
) -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                let (st, _) = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
                if st.source == 2 {
                    // Buggy path: waits for a second message from rank 2
                    // that never comes.
                    let _ = mpi.recv(Comm::WORLD, 2, 0)?;
                } else {
                    let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 0)?;
                }
            }
            r @ (1 | 2) => {
                mpi.send(Comm::WORLD, 0, 0, codec::encode_u64(r as u64))?;
            }
            _ => {}
        }
        Ok(())
    })
}

/// Seeded bug for the static analyzer's L001 lint: rank 0 enters a
/// barrier while every other rank enters a broadcast. The runtime reports
/// this dynamically as a collective mismatch; the pre-replay lint pass
/// flags it from the free run's trace without spending a single replay.
#[must_use]
pub fn collective_mismatch() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        if mpi.world_rank() == 0 {
            mpi.barrier(Comm::WORLD)?;
        } else if mpi.world_rank() == 1 {
            let _ = mpi.bcast(Comm::WORLD, 1, Some(Bytes::from_static(b"cfg")))?;
        } else {
            let _ = mpi.bcast(Comm::WORLD, 1, None)?;
        }
        Ok(())
    })
}

/// Seeded bug for the static analyzer's L002 lint: rank 0 posts a receive
/// for the message rank 1 sends, then abandons the request without ever
/// completing it. The named receive keeps the send/recv counts balanced,
/// so exactly the request-leak lint fires and nothing else.
#[must_use]
pub fn request_leak() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                let _abandoned = mpi.irecv(Comm::WORLD, 1, 5)?;
            }
            1 => mpi.send(Comm::WORLD, 0, 5, Bytes::from_static(b"orphaned"))?,
            _ => {}
        }
        Ok(())
    })
}

/// Leaks one duplicated communicator and one request per run (Table II's
/// C-leak and R-leak detectors).
#[must_use]
pub fn leaky_program() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        let _leaked_comm = mpi.comm_dup(Comm::WORLD)?;
        if mpi.world_rank() == 0 {
            let _leaked_req = mpi.irecv(Comm::WORLD, ANY_SOURCE, ANY_TAG)?;
        } else if mpi.world_rank() == 1 {
            mpi.send(Comm::WORLD, 0, 7, Bytes::from_static(b"leak-bait"))?;
        }
        Ok(())
    })
}

/// Seeded bug for the static analyzer's L005 lint: rank 0 posts a
/// wildcard receive for tag 9, but no rank ever sends tag 9 — the refined
/// match set is empty and the receive is stuck on *every* schedule. The
/// only traffic (rank 1's tag-8 send) goes to rank 2's named receive, so
/// the send/recv counts stay balanced and L003 stays quiet.
#[must_use]
pub fn stuck_wildcard() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 9)?;
            }
            1 => mpi.send(Comm::WORLD, 2, 8, Bytes::from_static(b"routine"))?,
            2 => {
                let _ = mpi.recv(Comm::WORLD, 1, 8)?;
            }
            _ => {}
        }
        Ok(())
    })
}

/// Conforming run of the committed `protocol_demo.protocol` spec: the
/// coordinator greets `left` (tag 10) then `right` (tag 11) and collects
/// one RESULT (tag 12) from each worker through wildcard receives. MPI-wise
/// the program is bug-free; it exists so the conformance checker has a
/// known-clean baseline next to the three seeded violations below.
#[must_use]
pub fn protocol_demo() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                mpi.send(Comm::WORLD, 1, 10, Bytes::from_static(b"left"))?;
                mpi.send(Comm::WORLD, 2, 11, Bytes::from_static(b"right"))?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 12)?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 12)?;
            }
            1 => {
                let _ = mpi.recv(Comm::WORLD, 0, 10)?;
                mpi.send(Comm::WORLD, 0, 12, Bytes::from_static(b"from-left"))?;
            }
            2 => {
                let _ = mpi.recv(Comm::WORLD, 0, 11)?;
                mpi.send(Comm::WORLD, 0, 12, Bytes::from_static(b"from-right"))?;
            }
            _ => {}
        }
        Ok(())
    })
}

/// Seeded **L006** (protocol-order) violation against `protocol_demo`'s
/// spec: the coordinator greets `right` *before* `left`. Every message is
/// still delivered (the workers' named receives don't care about global
/// order), so the program runs clean — only the protocol walk objects.
#[must_use]
pub fn protocol_order_bug() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                mpi.send(Comm::WORLD, 2, 11, Bytes::from_static(b"right"))?;
                mpi.send(Comm::WORLD, 1, 10, Bytes::from_static(b"left"))?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 12)?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 12)?;
            }
            1 => {
                let _ = mpi.recv(Comm::WORLD, 0, 10)?;
                mpi.send(Comm::WORLD, 0, 12, Bytes::from_static(b"from-left"))?;
            }
            2 => {
                let _ = mpi.recv(Comm::WORLD, 0, 11)?;
                mpi.send(Comm::WORLD, 0, 12, Bytes::from_static(b"from-right"))?;
            }
            _ => {}
        }
        Ok(())
    })
}

/// Seeded **L007** (unexpected-peer) violation against `protocol_demo`'s
/// spec: the coordinator's greetings carry the right tags but swap the
/// recipients — tag 10 goes to `right` and tag 11 to `left`. The workers
/// post `ANY_TAG` receives so the run itself completes.
#[must_use]
pub fn protocol_peer_bug() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                mpi.send(Comm::WORLD, 2, 10, Bytes::from_static(b"misrouted"))?;
                mpi.send(Comm::WORLD, 1, 11, Bytes::from_static(b"misrouted"))?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 12)?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 12)?;
            }
            1 => {
                let _ = mpi.recv(Comm::WORLD, 0, ANY_TAG)?;
                mpi.send(Comm::WORLD, 0, 12, Bytes::from_static(b"from-left"))?;
            }
            2 => {
                let _ = mpi.recv(Comm::WORLD, 0, ANY_TAG)?;
                mpi.send(Comm::WORLD, 0, 12, Bytes::from_static(b"from-right"))?;
            }
            _ => {}
        }
        Ok(())
    })
}

/// Seeded **L008** (incomplete-protocol) violation against
/// `protocol_demo`'s spec: `right` never reports a RESULT and the
/// coordinator gives up after a single wildcard receive, finalising with
/// one mandatory protocol receive outstanding. Send/recv counts stay
/// balanced, so L002/L003 have nothing to say — only the session type
/// notices the early exit.
#[must_use]
pub fn protocol_short_bug() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                mpi.send(Comm::WORLD, 1, 10, Bytes::from_static(b"left"))?;
                mpi.send(Comm::WORLD, 2, 11, Bytes::from_static(b"right"))?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 12)?;
            }
            1 => {
                let _ = mpi.recv(Comm::WORLD, 0, 10)?;
                mpi.send(Comm::WORLD, 0, 12, Bytes::from_static(b"from-left"))?;
            }
            2 => {
                let _ = mpi.recv(Comm::WORLD, 0, 11)?;
            }
            _ => {}
        }
        Ok(())
    })
}

/// Token-serialised two-stage funnel (companion spec:
/// `ordered_stages.protocol`). Stage 1 feeds the sink and only then passes
/// a token to stage 2, which feeds the sink in turn. The sink's wildcard
/// receives *look* racy to the clock-based alternate analysis (stage 2's
/// send is concurrent with the sink's first receive), but the protocol pins
/// each receive to exactly one sender — the committed demonstration that
/// `--prune-static --protocol` removes a replay PrunePlan v2 keeps.
#[must_use]
pub fn ordered_stages() -> FnProgram<impl Fn(&mut dyn Mpi) -> Result<()> + Send + Sync> {
    FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 7)?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 7)?;
            }
            1 => {
                mpi.send(Comm::WORLD, 0, 7, Bytes::from_static(b"stage-one"))?;
                mpi.send(Comm::WORLD, 2, 8, Bytes::from_static(b"token"))?;
            }
            2 => {
                let _ = mpi.recv(Comm::WORLD, 1, 8)?;
                mpi.send(Comm::WORLD, 0, 7, Bytes::from_static(b"stage-two"))?;
            }
            _ => {}
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, MatchPolicy, SimConfig};

    #[test]
    fn fig3_native_biased_run_is_clean() {
        let out = run_native(
            &SimConfig::new(3).with_policy(MatchPolicy::LowestRank),
            &fig3(),
        );
        assert!(out.succeeded(), "bias masks the bug: {:?}", out.rank_errors);
    }

    #[test]
    fn fig4_native_run_completes() {
        let out = run_native(&SimConfig::new(4), &fig4_cross_coupled());
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }

    #[test]
    fn symmetric_racers_native_run_completes() {
        let out = run_native(
            &SimConfig::new(4).with_policy(MatchPolicy::LowestRank),
            &symmetric_racers(),
        );
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }

    #[test]
    fn fig10_native_biased_run_is_clean() {
        let out = run_native(
            &SimConfig::new(3).with_policy(MatchPolicy::LowestRank),
            &fig10_unsafe(),
        );
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }

    #[test]
    fn head_to_head_deadlocks() {
        let out = run_native(&SimConfig::new(2), &deadlock_head_to_head());
        assert!(out.deadlocked());
    }

    #[test]
    fn alternate_schedule_deadlock_hidden_natively_under_bias() {
        let out = run_native(
            &SimConfig::new(3).with_policy(MatchPolicy::LowestRank),
            &deadlock_on_alternate_schedule(),
        );
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }

    #[test]
    fn stuck_wildcard_deadlocks_on_every_schedule() {
        let out = run_native(&SimConfig::new(3), &stuck_wildcard());
        assert!(out.deadlocked());
    }

    #[test]
    fn protocol_demo_family_runs_clean_natively() {
        let cfg = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
        let out = run_native(&cfg, &protocol_demo());
        assert!(out.succeeded(), "demo: {:?}", out.rank_errors);
        let out = run_native(&cfg, &protocol_order_bug());
        assert!(out.succeeded(), "order bug: {:?}", out.rank_errors);
        let out = run_native(&cfg, &protocol_peer_bug());
        assert!(out.succeeded(), "peer bug: {:?}", out.rank_errors);
        let out = run_native(&cfg, &protocol_short_bug());
        assert!(out.succeeded(), "short bug: {:?}", out.rank_errors);
    }

    #[test]
    fn ordered_stages_native_run_completes() {
        let out = run_native(
            &SimConfig::new(3).with_policy(MatchPolicy::LowestRank),
            &ordered_stages(),
        );
        assert!(out.succeeded(), "{:?}", out.rank_errors);
    }

    #[test]
    fn leaky_program_leaks() {
        let out = run_native(&SimConfig::new(2), &leaky_program());
        assert!(out.succeeded());
        assert!(out.leaks.has_comm_leak());
        assert!(out.leaks.has_request_leak());
        assert!(out.rank_errors[0].is_none());
    }
}
