//! Logical clocks for the DAMPI dynamic verifier.
//!
//! DAMPI's decentralized match-detection algorithm (paper §II-B/§II-C) rests
//! on *logical time*: every process keeps a clock, piggybacks it on each
//! message, and classifies incoming messages as **late** when the piggybacked
//! clock shows the send is *not causally after* an earlier wildcard receive.
//!
//! Two clock implementations are provided:
//!
//! * [`LamportClock`] — a single integer; scalable (O(1) piggyback) but
//!   imprecise: it may order genuinely concurrent events, so a late send can
//!   be misclassified as causally-after (the paper's Fig. 4 cross-coupled
//!   pattern). This is DAMPI's default.
//! * [`VectorClock`] — an N-vector; precise (characterizes concurrency
//!   exactly) but O(N) piggyback per message, which the paper deems
//!   non-scalable. DAMPI supports it as a reference mode to *characterize*
//!   what Lamport clocks miss.
//!
//! The [`LogicalClock`] trait abstracts over both so the verifier core is
//! generic in its clock mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lamport;
pub mod ordering;
pub mod vector;

pub use lamport::LamportClock;
pub use ordering::{ClockOrd, LogicalClock};
pub use vector::VectorClock;

/// A snapshot of a process clock as carried by a piggyback message.
///
/// DAMPI piggybacks either a single integer (Lamport mode) or a full vector
/// (vector mode). `ClockStamp` is the wire representation; it is what the
/// piggyback module serializes onto the shadow communicator.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ClockStamp {
    /// Lamport-mode stamp: the sender's scalar clock at send time.
    Lamport(u64),
    /// Vector-mode stamp: the sender's full vector at send time.
    Vector(Vec<u64>),
}

impl ClockStamp {
    /// The number of `u64` words this stamp occupies on the wire.
    ///
    /// Used by the virtual-time model to charge piggyback bandwidth: Lamport
    /// stamps cost one word, vector stamps cost N words — the scalability
    /// difference the paper's §II-C argues about.
    #[must_use]
    pub fn wire_words(&self) -> usize {
        match self {
            ClockStamp::Lamport(_) => 1,
            ClockStamp::Vector(v) => v.len(),
        }
    }

    /// Returns the scalar Lamport value if this is a Lamport stamp.
    #[must_use]
    pub fn as_lamport(&self) -> Option<u64> {
        match self {
            ClockStamp::Lamport(v) => Some(*v),
            ClockStamp::Vector(_) => None,
        }
    }

    /// Returns the vector if this is a vector stamp.
    #[must_use]
    pub fn as_vector(&self) -> Option<&[u64]> {
        match self {
            ClockStamp::Lamport(_) => None,
            ClockStamp::Vector(v) => Some(v),
        }
    }
}

/// Which clock algebra a verifier run uses (paper §II-C / §II-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ClockMode {
    /// Scalar Lamport clocks: scalable, sound, incomplete on rare
    /// cross-coupled patterns (paper Fig. 4).
    Lamport,
    /// Vector clocks: complete but O(N) piggyback — the non-scalable
    /// reference mode used to characterize Lamport imprecision.
    Vector,
}

impl ClockMode {
    /// Human-readable name used in reports and bench tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ClockMode::Lamport => "lamport",
            ClockMode::Vector => "vector",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_wire_words() {
        assert_eq!(ClockStamp::Lamport(7).wire_words(), 1);
        assert_eq!(ClockStamp::Vector(vec![0; 128]).wire_words(), 128);
    }

    #[test]
    fn stamp_accessors() {
        let l = ClockStamp::Lamport(3);
        assert_eq!(l.as_lamport(), Some(3));
        assert!(l.as_vector().is_none());
        let v = ClockStamp::Vector(vec![1, 2]);
        assert!(v.as_lamport().is_none());
        assert_eq!(v.as_vector(), Some(&[1u64, 2][..]));
    }

    #[test]
    fn mode_names() {
        assert_eq!(ClockMode::Lamport.name(), "lamport");
        assert_eq!(ClockMode::Vector.name(), "vector");
    }

    #[test]
    fn stamp_serde_roundtrip() {
        let s = ClockStamp::Vector(vec![4, 5, 6]);
        let j = serde_json::to_string(&s).unwrap();
        let back: ClockStamp = serde_json::from_str(&j).unwrap();
        assert_eq!(s, back);
    }
}
