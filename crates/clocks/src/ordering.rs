//! Causal ordering relations and the [`LogicalClock`] abstraction.

use crate::ClockStamp;

/// Result of comparing two clock values causally.
///
/// For vector clocks this is the exact happens-before relation of
/// Lamport's 1978 paper as refined by Fidge/Mattern; for scalar Lamport
/// clocks only `Before`/`After`/`Equal` are produced and concurrency is
/// *not* observable — the source of DAMPI's (rare) incompleteness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClockOrd {
    /// Left event happens-before right event.
    Before,
    /// Left event happens-after right event.
    After,
    /// Events are causally concurrent (only observable with vector clocks).
    Concurrent,
    /// Identical clock values.
    Equal,
}

impl ClockOrd {
    /// True when the relation establishes that the left event is *not
    /// causally after* the right event.
    #[must_use]
    pub fn is_not_after(self) -> bool {
        !matches!(self, ClockOrd::After)
    }

    /// The paper's **late** criterion (§II-C) against an epoch's *event
    /// timestamp* (post-tick): a send is a potential alternate match when it
    /// is strictly before or concurrent. Equality is excluded — a sender
    /// whose stamp equals the epoch's event stamp has already observed the
    /// epoch's tick (Lamport projection of a causally-after send), so
    /// counting it would be unsound.
    #[must_use]
    pub fn is_potential_match(self) -> bool {
        matches!(self, ClockOrd::Before | ClockOrd::Concurrent)
    }
}

/// A process-local logical clock, generic over the clock algebra.
///
/// The verifier core manipulates clocks only through this trait so that a
/// single implementation of Algorithm 1 serves both Lamport and vector
/// modes.
pub trait LogicalClock: Clone + Send + 'static {
    /// Create the zero clock for process `rank` in a world of `nprocs`.
    fn new(rank: usize, nprocs: usize) -> Self;

    /// Advance local time by one *visible* event (paper: each wildcard
    /// receive ticks the local clock, giving every epoch a unique value).
    fn tick(&mut self);

    /// Merge a received stamp into the local clock (receive rule).
    ///
    /// Lamport: `LC := max(LC, m.LC)`. Vector: component-wise max.
    fn merge(&mut self, stamp: &ClockStamp);

    /// Snapshot the current clock for piggybacking on an outgoing message.
    fn stamp(&self) -> ClockStamp;

    /// Compare an incoming stamp against a locally recorded stamp.
    ///
    /// Returns the causal relation of the *stamp's event* relative to the
    /// *recorded event*.
    fn compare(incoming: &ClockStamp, recorded: &ClockStamp) -> ClockOrd;

    /// Scalar projection of the clock used for epoch numbering.
    ///
    /// Epoch identifiers in the Epoch Decisions file are scalar even in
    /// vector mode (each process's own component is strictly monotonic, so it
    /// uniquely numbers that process's ND events).
    fn scalar(&self) -> u64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_after_relation() {
        assert!(ClockOrd::Before.is_not_after());
        assert!(ClockOrd::Concurrent.is_not_after());
        assert!(ClockOrd::Equal.is_not_after());
        assert!(!ClockOrd::After.is_not_after());
    }

    #[test]
    fn late_criterion_excludes_equality() {
        assert!(ClockOrd::Before.is_potential_match());
        assert!(ClockOrd::Concurrent.is_potential_match());
        assert!(!ClockOrd::Equal.is_potential_match());
        assert!(!ClockOrd::After.is_potential_match());
    }
}
