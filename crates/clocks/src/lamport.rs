//! Scalar Lamport clocks (paper §II-C).
//!
//! A Lamport clock approximates a vector clock with a single integer under
//! the same update rules. It preserves `VC[i] < VC[j] ⇒ LC_i < LC_j` but the
//! converse fails: Lamport clocks may order concurrent events, which is
//! exactly why DAMPI's completeness has the rare exception of the paper's
//! Fig. 4.

use crate::ordering::{ClockOrd, LogicalClock};
use crate::ClockStamp;

/// A process-local scalar Lamport clock.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LamportClock {
    value: u64,
}

impl LamportClock {
    /// Create a clock starting at zero.
    #[must_use]
    pub fn zero() -> Self {
        Self { value: 0 }
    }

    /// Current scalar value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Set the clock to an explicit value (used by the replay engine when
    /// restoring `guided_epoch` bookkeeping).
    pub fn set(&mut self, value: u64) {
        self.value = value;
    }
}

impl LogicalClock for LamportClock {
    fn new(_rank: usize, _nprocs: usize) -> Self {
        Self::zero()
    }

    fn tick(&mut self) {
        self.value += 1;
    }

    fn merge(&mut self, stamp: &ClockStamp) {
        match stamp {
            ClockStamp::Lamport(v) => self.value = self.value.max(*v),
            ClockStamp::Vector(_) => {
                unreachable!("Lamport clock cannot merge a vector stamp: mixed clock modes")
            }
        }
    }

    fn stamp(&self) -> ClockStamp {
        ClockStamp::Lamport(self.value)
    }

    fn compare(incoming: &ClockStamp, recorded: &ClockStamp) -> ClockOrd {
        let a = incoming
            .as_lamport()
            .expect("Lamport compare requires Lamport stamps");
        let b = recorded
            .as_lamport()
            .expect("Lamport compare requires Lamport stamps");
        match a.cmp(&b) {
            std::cmp::Ordering::Less => ClockOrd::Before,
            std::cmp::Ordering::Greater => ClockOrd::After,
            std::cmp::Ordering::Equal => ClockOrd::Equal,
        }
    }

    fn scalar(&self) -> u64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_increments() {
        let mut c = LamportClock::zero();
        assert_eq!(c.value(), 0);
        c.tick();
        c.tick();
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn merge_takes_max() {
        let mut c = LamportClock::zero();
        c.set(5);
        c.merge(&ClockStamp::Lamport(3));
        assert_eq!(c.value(), 5);
        c.merge(&ClockStamp::Lamport(9));
        assert_eq!(c.value(), 9);
    }

    #[test]
    fn compare_orders_scalars() {
        let a = ClockStamp::Lamport(1);
        let b = ClockStamp::Lamport(2);
        assert_eq!(LamportClock::compare(&a, &b), ClockOrd::Before);
        assert_eq!(LamportClock::compare(&b, &a), ClockOrd::After);
        assert_eq!(LamportClock::compare(&a, &a), ClockOrd::Equal);
    }

    #[test]
    fn stamp_roundtrip() {
        let mut c = LamportClock::zero();
        c.tick();
        let s = c.stamp();
        assert_eq!(s.as_lamport(), Some(1));
        let mut d = LamportClock::zero();
        d.merge(&s);
        assert_eq!(d.value(), 1);
    }

    #[test]
    #[should_panic(expected = "mixed clock modes")]
    fn merge_rejects_vector_stamp() {
        let mut c = LamportClock::zero();
        c.merge(&ClockStamp::Vector(vec![1, 2]));
    }

    #[test]
    fn scalar_matches_value() {
        let mut c = <LamportClock as LogicalClock>::new(3, 8);
        c.tick();
        assert_eq!(c.scalar(), 1);
    }
}
