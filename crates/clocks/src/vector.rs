//! Vector clocks (Fidge/Mattern), the precise but non-scalable reference
//! clock algebra (paper §II-C).
//!
//! Each process `i` in an `N`-process world keeps an `N`-vector `VC[i]`;
//! `VC_j[i]` is `i`'s knowledge of `j`'s time. Sends ship the whole vector,
//! receives merge component-wise, and comparison recovers the *exact*
//! happens-before relation — including concurrency, which scalar Lamport
//! clocks cannot observe.

use crate::ordering::{ClockOrd, LogicalClock};
use crate::ClockStamp;

/// A process-local vector clock.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct VectorClock {
    rank: usize,
    components: Vec<u64>,
}

impl VectorClock {
    /// Create the zero vector for `rank` in a world of `nprocs` processes.
    #[must_use]
    pub fn zero(rank: usize, nprocs: usize) -> Self {
        assert!(rank < nprocs, "rank {rank} out of range for {nprocs} procs");
        Self {
            rank,
            components: vec![0; nprocs],
        }
    }

    /// The owning process rank.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Read-only view of the components.
    #[must_use]
    pub fn components(&self) -> &[u64] {
        &self.components
    }

    /// Compare two raw vectors under the component-wise partial order.
    ///
    /// `a happens-before b` iff `∀k a[k] ≤ b[k]` and `a ≠ b`.
    #[must_use]
    pub fn compare_raw(a: &[u64], b: &[u64]) -> ClockOrd {
        assert_eq!(a.len(), b.len(), "vector clocks of different worlds");
        let mut le = true;
        let mut ge = true;
        for (&x, &y) in a.iter().zip(b.iter()) {
            if x > y {
                le = false;
            }
            if x < y {
                ge = false;
            }
        }
        match (le, ge) {
            (true, true) => ClockOrd::Equal,
            (true, false) => ClockOrd::Before,
            (false, true) => ClockOrd::After,
            (false, false) => ClockOrd::Concurrent,
        }
    }
}

impl LogicalClock for VectorClock {
    fn new(rank: usize, nprocs: usize) -> Self {
        Self::zero(rank, nprocs)
    }

    fn tick(&mut self) {
        self.components[self.rank] += 1;
    }

    fn merge(&mut self, stamp: &ClockStamp) {
        let incoming = stamp
            .as_vector()
            .expect("vector clock cannot merge a Lamport stamp: mixed clock modes");
        assert_eq!(
            incoming.len(),
            self.components.len(),
            "vector clocks of different worlds"
        );
        for (mine, theirs) in self.components.iter_mut().zip(incoming.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    fn stamp(&self) -> ClockStamp {
        ClockStamp::Vector(self.components.clone())
    }

    fn compare(incoming: &ClockStamp, recorded: &ClockStamp) -> ClockOrd {
        let a = incoming
            .as_vector()
            .expect("vector compare requires vector stamps");
        let b = recorded
            .as_vector()
            .expect("vector compare requires vector stamps");
        Self::compare_raw(a, b)
    }

    fn scalar(&self) -> u64 {
        self.components[self.rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_all_zero() {
        let c = VectorClock::zero(1, 4);
        assert_eq!(c.components(), &[0, 0, 0, 0]);
        assert_eq!(c.rank(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_rejects_bad_rank() {
        let _ = VectorClock::zero(4, 4);
    }

    #[test]
    fn tick_bumps_own_component() {
        let mut c = VectorClock::zero(2, 4);
        c.tick();
        c.tick();
        assert_eq!(c.components(), &[0, 0, 2, 0]);
        assert_eq!(c.scalar(), 2);
    }

    #[test]
    fn merge_componentwise_max() {
        let mut a = VectorClock::zero(0, 3);
        a.tick(); // [1,0,0]
        let mut b = VectorClock::zero(1, 3);
        b.tick();
        b.tick(); // [0,2,0]
        a.merge(&b.stamp());
        assert_eq!(a.components(), &[1, 2, 0]);
    }

    #[test]
    fn compare_detects_concurrency() {
        let a = ClockStamp::Vector(vec![1, 0]);
        let b = ClockStamp::Vector(vec![0, 1]);
        assert_eq!(VectorClock::compare(&a, &b), ClockOrd::Concurrent);
        assert_eq!(VectorClock::compare(&a, &a), ClockOrd::Equal);
    }

    #[test]
    fn compare_detects_order() {
        let a = ClockStamp::Vector(vec![1, 1]);
        let b = ClockStamp::Vector(vec![2, 1]);
        assert_eq!(VectorClock::compare(&a, &b), ClockOrd::Before);
        assert_eq!(VectorClock::compare(&b, &a), ClockOrd::After);
    }

    #[test]
    #[should_panic(expected = "different worlds")]
    fn compare_rejects_mismatched_lengths() {
        let a = ClockStamp::Vector(vec![1]);
        let b = ClockStamp::Vector(vec![1, 2]);
        let _ = VectorClock::compare(&a, &b);
    }

    #[test]
    fn compare_is_reflexive() {
        // Equality (not Before/After) on every self-comparison, including
        // the zero vector and vectors with zero components.
        for v in [vec![0, 0, 0], vec![1, 0, 2], vec![7, 7, 7]] {
            let s = ClockStamp::Vector(v);
            assert_eq!(VectorClock::compare(&s, &s), ClockOrd::Equal);
        }
    }

    #[test]
    fn compare_is_antisymmetric() {
        // Swapping the operands converts Before to After, Concurrent and
        // Equal to themselves.
        let cases = [
            (
                vec![1, 1, 0],
                vec![2, 1, 0],
                ClockOrd::Before,
                ClockOrd::After,
            ),
            (
                vec![1, 0, 0],
                vec![0, 1, 0],
                ClockOrd::Concurrent,
                ClockOrd::Concurrent,
            ),
            (
                vec![3, 2, 1],
                vec![3, 2, 1],
                ClockOrd::Equal,
                ClockOrd::Equal,
            ),
        ];
        for (a, b, fwd, rev) in cases {
            let (a, b) = (ClockStamp::Vector(a), ClockStamp::Vector(b));
            assert_eq!(VectorClock::compare(&a, &b), fwd);
            assert_eq!(VectorClock::compare(&b, &a), rev);
        }
    }

    #[test]
    fn equal_requires_every_component() {
        // Dominance in one component with a tie elsewhere is strict order,
        // not equality; a single opposing component breaks it to
        // concurrency.
        let base = ClockStamp::Vector(vec![2, 2, 2]);
        let one_up = ClockStamp::Vector(vec![2, 3, 2]);
        let mixed = ClockStamp::Vector(vec![1, 3, 2]);
        assert_eq!(VectorClock::compare(&base, &one_up), ClockOrd::Before);
        assert_eq!(VectorClock::compare(&base, &mixed), ClockOrd::Concurrent);
    }

    #[test]
    fn concurrent_branches_stay_concurrent_after_local_work() {
        // Two processes that never communicate remain concurrent no matter
        // how much local progress each makes.
        let mut a = VectorClock::zero(0, 2);
        let mut b = VectorClock::zero(1, 2);
        for _ in 0..5 {
            a.tick();
        }
        b.tick();
        assert_eq!(
            VectorClock::compare(&a.stamp(), &b.stamp()),
            ClockOrd::Concurrent
        );
    }

    #[test]
    fn message_chain_establishes_order() {
        // P0 ticks & sends to P1; P1 merges, ticks, sends to P2; P2 merges.
        // Then P0's send event is Before P2's state.
        let mut p0 = VectorClock::zero(0, 3);
        p0.tick();
        let s0 = p0.stamp();
        let mut p1 = VectorClock::zero(1, 3);
        p1.merge(&s0);
        p1.tick();
        let s1 = p1.stamp();
        let mut p2 = VectorClock::zero(2, 3);
        p2.merge(&s1);
        p2.tick();
        assert_eq!(VectorClock::compare(&s0, &p2.stamp()), ClockOrd::Before);
    }
}
