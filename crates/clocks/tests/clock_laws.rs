//! Property-based tests of the clock algebras.
//!
//! The key law the paper relies on (§II-C): if we maintain time with *both*
//! vector and Lamport clocks under identical event streams, then
//! `VC[i] < VC[j]  ⇒  LC_i < LC_j`. The converse does not hold — Lamport
//! clocks may order concurrent events — which these tests also demonstrate.

use dampi_clocks::{ClockOrd, LamportClock, LogicalClock, VectorClock};
use proptest::prelude::*;

/// A random distributed computation: a sequence of events over `n` procs.
#[derive(Debug, Clone)]
enum Event {
    /// `Local(p)`: process p performs a visible local event (ticks).
    Local(usize),
    /// `Msg(src, dst)`: src ticks, stamps, sends; dst merges and ticks.
    Msg(usize, usize),
}

/// Replay an event trace with both clock families, returning per-event
/// (vector stamp, lamport stamp) pairs taken at the acting process.
fn replay(nprocs: usize, events: &[Event]) -> Vec<(Vec<u64>, u64)> {
    let mut vcs: Vec<VectorClock> = (0..nprocs).map(|r| VectorClock::new(r, nprocs)).collect();
    let mut lcs: Vec<LamportClock> = (0..nprocs).map(|r| LamportClock::new(r, nprocs)).collect();
    let mut stamps = Vec::with_capacity(events.len());
    for ev in events {
        match *ev {
            Event::Local(p) => {
                vcs[p].tick();
                lcs[p].tick();
                stamps.push((vcs[p].components().to_vec(), lcs[p].scalar()));
            }
            Event::Msg(src, dst) => {
                vcs[src].tick();
                lcs[src].tick();
                let vs = vcs[src].stamp();
                let ls = lcs[src].stamp();
                if src != dst {
                    vcs[dst].merge(&vs);
                    lcs[dst].merge(&ls);
                }
                vcs[dst].tick();
                lcs[dst].tick();
                stamps.push((vcs[dst].components().to_vec(), lcs[dst].scalar()));
            }
        }
    }
    stamps
}

proptest! {
    /// VC order implies LC order over arbitrary computations.
    #[test]
    fn lamport_consistent_with_vector(
        nprocs in 2usize..6,
        raw in prop::collection::vec((0usize..100, 0usize..100, 0usize..2), 1..60),
    ) {
        let events: Vec<Event> = raw
            .into_iter()
            .map(|(a, b, kind)| {
                if kind == 0 {
                    Event::Local(a % nprocs)
                } else {
                    Event::Msg(a % nprocs, b % nprocs)
                }
            })
            .collect();
        let stamps = replay(nprocs, &events);
        for (i, (vi, li)) in stamps.iter().enumerate() {
            for (vj, lj) in stamps.iter().skip(i + 1) {
                if VectorClock::compare_raw(vi, vj) == ClockOrd::Before {
                    prop_assert!(li < lj, "VC says before but LC {li} >= {lj}");
                }
                if VectorClock::compare_raw(vj, vi) == ClockOrd::Before {
                    prop_assert!(lj < li, "VC says before but LC {lj} >= {li}");
                }
            }
        }
    }

    /// Merging is monotone: a clock's scalar never decreases.
    #[test]
    fn merge_monotone(values in prop::collection::vec(0u64..1000, 1..50)) {
        let mut c = LamportClock::new(0, 1);
        let mut prev = c.scalar();
        for v in values {
            c.merge(&dampi_clocks::ClockStamp::Lamport(v));
            c.tick();
            prop_assert!(c.scalar() >= prev);
            prop_assert!(c.scalar() > v);
            prev = c.scalar();
        }
    }

    /// Vector comparison is a partial order: antisymmetric & transitive over
    /// generated stamps.
    #[test]
    fn vector_partial_order_laws(
        nprocs in 2usize..5,
        raw in prop::collection::vec((0usize..100, 0usize..100), 1..40),
    ) {
        let events: Vec<Event> = raw
            .into_iter()
            .map(|(a, b)| Event::Msg(a % nprocs, b % nprocs))
            .collect();
        let stamps = replay(nprocs, &events);
        let vs: Vec<&Vec<u64>> = stamps.iter().map(|(v, _)| v).collect();
        for a in &vs {
            prop_assert_eq!(VectorClock::compare_raw(a, a), ClockOrd::Equal);
        }
        for a in &vs {
            for b in &vs {
                let ab = VectorClock::compare_raw(a, b);
                let ba = VectorClock::compare_raw(b, a);
                match ab {
                    ClockOrd::Before => prop_assert_eq!(ba, ClockOrd::After),
                    ClockOrd::After => prop_assert_eq!(ba, ClockOrd::Before),
                    ClockOrd::Concurrent => prop_assert_eq!(ba, ClockOrd::Concurrent),
                    ClockOrd::Equal => prop_assert_eq!(ba, ClockOrd::Equal),
                }
                for c in &vs {
                    if ab == ClockOrd::Before
                        && VectorClock::compare_raw(b, c) == ClockOrd::Before
                    {
                        prop_assert_eq!(VectorClock::compare_raw(a, c), ClockOrd::Before);
                    }
                }
            }
        }
    }
}

/// The canonical demonstration that Lamport clocks order concurrent events:
/// two processes that never communicate but tick different amounts.
#[test]
fn lamport_orders_concurrent_events() {
    let mut p0 = VectorClock::new(0, 2);
    let mut p1 = VectorClock::new(1, 2);
    p0.tick();
    p1.tick();
    p1.tick();
    // Vector clocks: concurrent.
    assert_eq!(
        VectorClock::compare(&p0.stamp(), &p1.stamp()),
        ClockOrd::Concurrent
    );
    // Lamport clocks: ordered (1 < 2) — the imprecision of §II-F.
    let mut l0 = LamportClock::new(0, 2);
    let mut l1 = LamportClock::new(1, 2);
    l0.tick();
    l1.tick();
    l1.tick();
    assert_eq!(
        LamportClock::compare(&l0.stamp(), &l1.stamp()),
        ClockOrd::Before
    );
}
