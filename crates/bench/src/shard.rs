//! Shard-overhead measurement: the process-sharded supervisor against the
//! in-process worker pool.
//!
//! The supervisor buys fault tolerance (worker crashes lose wall-clock,
//! not results) at the cost of a frame protocol between it and every
//! worker: each replay's `DecisionSet` is serialized out and its
//! `SubtreeResult` serialized back. This harness prices that tax. As in
//! [`crate::parallel`], every replay carries a fixed simulated launch
//! latency — on a real cluster the protocol cost hides entirely inside
//! the launch latency, and the measurement shows how close the
//! reproduction gets.
//!
//! Parity is asserted on every point: any fleet width must produce the
//! same interleaving count and error set as the unsharded walk, or the
//! measurement panics rather than report an overhead figure for a wrong
//! answer.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dampi_core::scheduler::{explore_parallel, ExploreOptions};
use dampi_core::shard::{explore_sharded, InProcessLauncher, ShardOptions};
use dampi_core::{DampiVerifier, DecisionSet};
use dampi_mpi::program::MpiProgram;
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::matmul::{Matmul, MatmulParams};
use dampi_workloads::patterns;

/// One measured `(workload, fleet-width)` point. `shards == 0` is the
/// unsharded `jobs = 1` baseline.
#[derive(Debug, Clone)]
pub struct ShardPoint {
    /// Workload name.
    pub workload: String,
    /// Worker-process stand-ins (`0` = unsharded baseline).
    pub shards: usize,
    /// Wall-clock seconds for the whole campaign.
    pub wall_s: f64,
    /// Interleavings executed (must match the baseline).
    pub interleavings: u64,
    /// Distinct errors found (must match the baseline).
    pub errors: usize,
}

fn verifier_for(workload: &str) -> (Arc<DampiVerifier>, Arc<dyn MpiProgram>) {
    match workload {
        "symmetric_racers" => (
            Arc::new(DampiVerifier::new(
                SimConfig::new(4).with_policy(MatchPolicy::LowestRank),
            )),
            Arc::new(patterns::symmetric_racers()),
        ),
        "matmul" => (
            Arc::new(DampiVerifier::new(SimConfig::new(4))),
            Arc::new(Matmul::new(MatmulParams::default())),
        ),
        other => panic!("unknown shard workload `{other}`"),
    }
}

fn opts() -> ExploreOptions {
    ExploreOptions {
        // Same rationale as the parallel-explore harness: measure the
        // executor, not the retry policy, and expose a wide frontier.
        divergence_retries: 0,
        branch_on_guided: true,
        ..ExploreOptions::default()
    }
}

/// Measure one campaign of `workload`: unsharded when `shards == 0`,
/// otherwise across a fleet of in-process worker stand-ins.
#[must_use]
pub fn measure(workload: &str, shards: usize, replay_latency: Duration) -> ShardPoint {
    let (verifier, prog) = verifier_for(workload);
    let opts = opts();
    let start = Instant::now();
    let ex = if shards == 0 {
        let run = |ds: &DecisionSet| {
            std::thread::sleep(replay_latency);
            verifier.instrumented_run(prog.as_ref(), ds)
        };
        explore_parallel(run, &opts)
    } else {
        let v = Arc::clone(&verifier);
        let p = Arc::clone(&prog);
        let run: Arc<dyn Fn(&DecisionSet) -> dampi_core::scheduler::RunResult + Send + Sync> =
            Arc::new(move |ds| {
                std::thread::sleep(replay_latency);
                v.instrumented_run(p.as_ref(), ds)
            });
        let launcher = InProcessLauncher::new(run, &opts);
        let shard = ShardOptions {
            shards,
            ..ShardOptions::default()
        };
        explore_sharded(&launcher, &opts, &shard, None).expect("clean sharded campaign")
    };
    ShardPoint {
        workload: workload.to_owned(),
        shards,
        wall_s: start.elapsed().as_secs_f64(),
        interleavings: ex.interleavings,
        errors: ex.errors.len(),
    }
}

/// Measure `workload` unsharded and at each fleet width, asserting
/// result parity across all of them.
#[must_use]
pub fn sweep(workload: &str, widths: &[usize], replay_latency: Duration) -> Vec<ShardPoint> {
    let mut points = vec![measure(workload, 0, replay_latency)];
    points.extend(widths.iter().map(|&s| measure(workload, s, replay_latency)));
    let base = &points[0];
    for p in &points[1..] {
        assert_eq!(
            p.interleavings, base.interleavings,
            "{workload}: shards={} diverged from the unsharded walk in interleavings",
            p.shards
        );
        assert_eq!(
            p.errors, base.errors,
            "{workload}: shards={} diverged from the unsharded walk in error count",
            p.shards
        );
    }
    points
}

/// Render sweeps as the `BENCH_shard_overhead.json` snapshot format.
#[must_use]
pub fn to_json(latency: Duration, sweeps: &[Vec<ShardPoint>]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"replay_latency_ms\": {},\n  \"workloads\": {{\n",
        latency.as_millis()
    ));
    for (wi, points) in sweeps.iter().enumerate() {
        let base = &points[0];
        out.push_str(&format!("    \"{}\": {{\n", base.workload));
        out.push_str(&format!(
            "      \"interleavings\": {},\n      \"errors\": {},\n      \"points\": [\n",
            base.interleavings, base.errors
        ));
        for (i, p) in points.iter().enumerate() {
            let mode = if p.shards == 0 {
                "\"jobs1\"".to_owned()
            } else {
                format!("\"shards{}\"", p.shards)
            };
            out.push_str(&format!(
                "        {{\"mode\": {mode}, \"wall_s\": {:.4}, \"overhead_x\": {:.2}}}{}\n",
                p.wall_s,
                p.wall_s / base.wall_s,
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if wi + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}
