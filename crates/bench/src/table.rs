//! Minimal fixed-width table printer for paper-style outputs.

/// A simple table accumulated row by row and printed with aligned columns.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must have the same arity as the header).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n=== {} ===\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                line.push_str(&format!("{:<width$}  ", cells[i], width = widths[i]));
            }
            line.trim_end().to_owned()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * ncols));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["np", "time"]);
        t.row(vec!["4".into(), "1.25".into()]);
        t.row(vec!["1024".into(), "0.5".into()]);
        let s = t.render();
        assert!(s.contains("=== Demo ==="));
        assert!(s.contains("np"));
        assert!(s.contains("1024"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
