//! Protocol-guided pruning measurement (`verify --prune-static
//! --protocol` vs. the plain v2 plan).
//!
//! For each workload with a committed session protocol, grow three
//! campaigns from the *same* traced free run: plain, pruned with the v2
//! plan (`analyze`), and pruned with the v3 plan (`analyze_with_protocol`
//! against the committed spec). The headline metric is the replay delta
//! between v2 and v3 — schedules the session type refutes that the
//! trace-local analysis cannot.
//!
//! The soundness contract is asserted on every point: all three error
//! sets byte-identical, v3 replays ≤ v2 replays ≤ plain replays, and the
//! committed spec conformant on the traced run (a non-conformant run
//! would contribute no facts and the row would silently measure nothing).

use std::time::Instant;

use dampi_analysis::{analyze, analyze_with_protocol, ProtocolSpec};
use dampi_core::report::VerificationReport;
use dampi_core::DampiVerifier;
use dampi_mpi::program::MpiProgram;
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::{patterns, protocols};

/// One measured workload: plain vs. v2-pruned vs. protocol-pruned.
#[derive(Debug, Clone)]
pub struct ProtocolPoint {
    /// Workload name (also the committed spec name).
    pub workload: String,
    /// Explicit configuration of the point; two snapshots are comparable
    /// only when their `params` strings are identical.
    pub params: String,
    /// Interleavings the plain campaign replayed.
    pub base_interleavings: u64,
    /// Interleavings under the v2 plan (no protocol).
    pub v2_interleavings: u64,
    /// Interleavings under the v3 plan (protocol facts included).
    pub protocol_interleavings: u64,
    /// Frontier forks dropped by protocol-infeasible facts.
    pub protocol_alternates_pruned: u64,
    /// Wildcard instances the protocol proved deterministic.
    pub protocol_wildcards_deterministic: u64,
    /// Protocol-deterministic facts in the plan.
    pub plan_deterministic: usize,
    /// Protocol-infeasible facts in the plan.
    pub plan_infeasible: usize,
    /// Wall-clock seconds of the v2-pruned campaign (analysis included).
    pub v2_wall_s: f64,
    /// Wall-clock seconds of the protocol-pruned campaign (conformance
    /// check and analysis included).
    pub protocol_wall_s: f64,
    /// Errors found (identical across all three campaigns by assertion).
    pub errors: usize,
}

fn setup(workload: &str) -> (DampiVerifier, Box<dyn MpiProgram>, String) {
    match workload {
        "ordered_stages" => (
            DampiVerifier::new(SimConfig::new(3).with_policy(MatchPolicy::LowestRank)),
            Box::new(patterns::ordered_stages()),
            "np=3 policy=lowest_rank protocol_prune bound=unbounded".to_owned(),
        ),
        "protocol_demo" => (
            DampiVerifier::new(SimConfig::new(3).with_policy(MatchPolicy::LowestRank)),
            Box::new(patterns::protocol_demo()),
            "np=3 policy=lowest_rank protocol_prune bound=unbounded".to_owned(),
        ),
        other => panic!("unknown protocol workload `{other}`"),
    }
}

fn error_keys(report: &VerificationReport) -> Vec<(usize, String)> {
    let mut keys: Vec<(usize, String)> = report
        .errors
        .iter()
        .map(|e| (e.rank, e.error.to_string()))
        .collect();
    keys.sort();
    keys
}

/// Run `workload` plain, v2-pruned, and protocol-pruned, asserting the
/// soundness contract between all three campaigns.
#[must_use]
pub fn measure(workload: &str) -> ProtocolPoint {
    let (verifier, prog, params) = setup(workload);
    let spec_text =
        protocols::by_name(workload).unwrap_or_else(|| panic!("{workload}: no committed spec"));
    let spec = ProtocolSpec::parse(spec_text).expect("committed spec parses");
    let (events, run) = verifier.traced_run(prog.as_ref());
    let np = verifier.sim.nprocs;

    let base = verifier.verify_with_first_run(prog.as_ref(), run.clone());

    let start = Instant::now();
    let v2 = analyze(prog.name(), np, &events, &run);
    let v2_report = verifier
        .clone()
        .with_prune_plan(v2.prune_plan())
        .verify_with_first_run(prog.as_ref(), run.clone());
    let v2_wall_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let v3 = analyze_with_protocol(prog.name(), np, &events, &run, Some(&spec))
        .expect("protocol analysis succeeds");
    let summary = v3.protocol.as_ref().expect("protocol summary present");
    assert_eq!(
        (summary.l006, summary.l007, summary.l008),
        (0, 0, 0),
        "{workload}: committed spec must be conformant on the traced run"
    );
    let plan_deterministic = v3.plan.protocol_deterministic.len();
    let plan_infeasible = v3.plan.protocol_infeasible.len();
    let v3_report = verifier
        .clone()
        .with_prune_plan(v3.prune_plan())
        .verify_with_first_run(prog.as_ref(), run);
    let protocol_wall_s = start.elapsed().as_secs_f64();

    let base_keys = error_keys(&base);
    assert_eq!(
        base_keys,
        error_keys(&v2_report),
        "{workload}: v2 pruning changed the error set"
    );
    assert_eq!(
        base_keys,
        error_keys(&v3_report),
        "{workload}: protocol pruning changed the error set"
    );
    assert!(
        v3_report.interleavings <= v2_report.interleavings
            && v2_report.interleavings <= base.interleavings,
        "{workload}: pruning lattice violated ({} / {} / {})",
        base.interleavings,
        v2_report.interleavings,
        v3_report.interleavings
    );

    ProtocolPoint {
        workload: workload.to_owned(),
        params,
        base_interleavings: base.interleavings,
        v2_interleavings: v2_report.interleavings,
        protocol_interleavings: v3_report.interleavings,
        protocol_alternates_pruned: v3_report.protocol_alternates_pruned,
        protocol_wildcards_deterministic: v3_report.protocol_wildcards_deterministic,
        plan_deterministic,
        plan_infeasible,
        v2_wall_s,
        protocol_wall_s,
        errors: base.errors.len(),
    }
}

/// JSON snapshot (`BENCH_protocol_prune.json`).
#[must_use]
pub fn to_json(points: &[ProtocolPoint]) -> String {
    let mut out = String::from("{\n  \"workloads\": {\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"params\": \"{}\", \"base_interleavings\": {}, \
             \"v2_interleavings\": {}, \"protocol_interleavings\": {}, \
             \"protocol_alternates_pruned\": {}, \
             \"protocol_wildcards_deterministic\": {}, \
             \"plan_deterministic\": {}, \"plan_infeasible\": {}, \
             \"v2_wall_s\": {:.4}, \"protocol_wall_s\": {:.4}, \"errors\": {}}}{}\n",
            p.workload,
            p.params,
            p.base_interleavings,
            p.v2_interleavings,
            p.protocol_interleavings,
            p.protocol_alternates_pruned,
            p.protocol_wildcards_deterministic,
            p.plan_deterministic,
            p.plan_infeasible,
            p.v2_wall_s,
            p.protocol_wall_s,
            p.errors,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}
