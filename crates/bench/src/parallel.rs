//! Parallel-exploration speedup measurement (the `--jobs` worker pool).
//!
//! A replay in a real DAMPI deployment is a full MPI job launch —
//! milliseconds to seconds of latency per interleaving, most of it spent
//! *waiting* (scheduler queues, process spawn, network). The worker pool's
//! value is overlapping that latency; on a loaded or single-core driver
//! node the CPU work itself cannot be sped up, and the simulation's
//! replays are microseconds anyway. The harness therefore models the
//! launch latency explicitly: every replay sleeps a fixed
//! `replay_latency` on its worker thread before executing, and the
//! measurement reports how much of that latency `jobs = N` hides.
//!
//! Parity is asserted on every point: any worker count must produce the
//! same interleaving count and error set (the deterministic-merge
//! contract), or the measurement panics rather than report a speedup for
//! a wrong answer.

use std::time::{Duration, Instant};

use dampi_core::scheduler::{explore_parallel, ExploreOptions};
use dampi_core::{DampiVerifier, DecisionSet};
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::matmul::{Matmul, MatmulParams};
use dampi_workloads::parmetis::{Parmetis, ParmetisParams};
use dampi_workloads::patterns;

/// One measured `(workload, jobs)` point.
#[derive(Debug, Clone)]
pub struct ParallelPoint {
    /// Workload name.
    pub workload: String,
    /// Worker-pool size.
    pub jobs: usize,
    /// Wall-clock seconds for the whole exploration.
    pub wall_s: f64,
    /// Interleavings executed (must match across all `jobs` values).
    pub interleavings: u64,
    /// Distinct errors found (must match across all `jobs` values).
    pub errors: usize,
    /// Exploration throughput, interleavings per wall-clock second.
    pub rate: f64,
}

fn verifier_for(workload: &str) -> (DampiVerifier, Box<dyn dampi_mpi::program::MpiProgram>) {
    match workload {
        "symmetric_racers" => (
            DampiVerifier::new(SimConfig::new(4).with_policy(MatchPolicy::LowestRank)),
            Box::new(patterns::symmetric_racers()),
        ),
        "matmul" => (
            DampiVerifier::new(SimConfig::new(4)),
            Box::new(Matmul::new(MatmulParams::default())),
        ),
        "parmetis" => (
            DampiVerifier::new(SimConfig::new(8)),
            Box::new(Parmetis::new(ParmetisParams::nominal(8, 0.1))),
        ),
        other => panic!("unknown speedup workload `{other}`"),
    }
}

/// Measure one exploration of `workload` under `jobs` workers, each
/// replay preceded by `replay_latency` of simulated launch latency.
#[must_use]
pub fn measure(workload: &str, jobs: usize, replay_latency: Duration) -> ParallelPoint {
    let (verifier, prog) = verifier_for(workload);
    let opts = ExploreOptions {
        jobs,
        // `symmetric_racers` diverges *deterministically* (equal-clock
        // epochs, §II-F), so retrying a divergent replay only re-pays the
        // launch latency for the same outcome — skip retries to measure
        // the pool, not the retry policy.
        divergence_retries: 0,
        // Branch on guided epochs too: wider fork trees expose more of
        // the frontier to the pool (and more coverage), which is what a
        // speedup benchmark should be stressing.
        branch_on_guided: true,
        retry_backoff: dampi_core::RetryBackoff::constant(Duration::from_millis(5)),
        ..ExploreOptions::default()
    };
    let run = |ds: &DecisionSet| {
        std::thread::sleep(replay_latency);
        verifier.instrumented_run(prog.as_ref(), ds)
    };
    let start = Instant::now();
    let ex = explore_parallel(run, &opts);
    let wall_s = start.elapsed().as_secs_f64();
    ParallelPoint {
        workload: workload.to_owned(),
        jobs,
        wall_s,
        interleavings: ex.interleavings,
        errors: ex.errors.len(),
        rate: ex.interleavings as f64 / wall_s,
    }
}

/// Measure `workload` at each worker count, asserting result parity
/// across all of them.
#[must_use]
pub fn sweep(workload: &str, jobs: &[usize], replay_latency: Duration) -> Vec<ParallelPoint> {
    let points: Vec<ParallelPoint> = jobs
        .iter()
        .map(|&j| measure(workload, j, replay_latency))
        .collect();
    let base = &points[0];
    for p in &points[1..] {
        assert_eq!(
            p.interleavings, base.interleavings,
            "{workload}: jobs={} diverged from jobs={} in interleavings",
            p.jobs, base.jobs
        );
        assert_eq!(
            p.errors, base.errors,
            "{workload}: jobs={} diverged from jobs={} in error count",
            p.jobs, base.jobs
        );
    }
    points
}

/// Render a sweep as the `BENCH_parallel_explore.json` snapshot format.
#[must_use]
pub fn to_json(latency: Duration, sweeps: &[Vec<ParallelPoint>]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"replay_latency_ms\": {},\n  \"workloads\": {{\n",
        latency.as_millis()
    ));
    for (wi, points) in sweeps.iter().enumerate() {
        let base = &points[0];
        out.push_str(&format!("    \"{}\": {{\n", base.workload));
        out.push_str(&format!(
            "      \"interleavings\": {},\n      \"errors\": {},\n      \"points\": [\n",
            base.interleavings, base.errors
        ));
        for (i, p) in points.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"jobs\": {}, \"wall_s\": {:.4}, \"interleavings_per_s\": {:.2}, \"speedup\": {:.2}}}{}\n",
                p.jobs,
                p.wall_s,
                p.rate,
                base.wall_s / p.wall_s,
                if i + 1 < points.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if wi + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}
