//! Metrics/tracing overhead measurement (the observability layer's cost).
//!
//! The observability contract is that a campaign run *without*
//! `--metrics`/`--trace` pays nothing: every hook in the scheduler is
//! behind an `Option` that defaults to `None`. This harness quantifies
//! the other side — what a fully instrumented campaign (atomic counters,
//! histograms, semantic aggregation, and a JSONL trace written to an
//! in-memory sink) costs relative to the bare exploration — by exploring
//! the same workload repeatedly in both configurations and comparing
//! wall-clock means.
//!
//! The replays here are microsecond-scale simulations, the worst case for
//! relative overhead; a real deployment's process-launch latency dwarfs
//! the counters by orders of magnitude.

use std::io;
use std::time::Instant;

use dampi_core::scheduler::{explore_parallel, ExploreOptions};
use dampi_core::{CampaignMetrics, CampaignTrace, DampiVerifier, DecisionSet};
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::matmul::{Matmul, MatmulParams};
use dampi_workloads::patterns;

/// One measured workload: bare vs instrumented exploration.
#[derive(Debug, Clone)]
pub struct OverheadPoint {
    /// Workload name.
    pub workload: String,
    /// Explorations averaged per configuration.
    pub reps: u32,
    /// Interleavings per exploration (identical in both configurations).
    pub interleavings: u64,
    /// Mean seconds per exploration, metrics off.
    pub off_s: f64,
    /// Mean seconds per exploration, metrics + trace on.
    pub on_s: f64,
}

impl OverheadPoint {
    /// Instrumented-over-bare overhead in percent (negative = noise).
    #[must_use]
    pub fn overhead_pct(&self) -> f64 {
        (self.on_s / self.off_s - 1.0) * 100.0
    }
}

fn verifier_for(workload: &str) -> (DampiVerifier, Box<dyn dampi_mpi::program::MpiProgram>) {
    match workload {
        "symmetric_racers" => (
            DampiVerifier::new(SimConfig::new(4).with_policy(MatchPolicy::LowestRank)),
            Box::new(patterns::symmetric_racers()),
        ),
        "matmul" => (
            DampiVerifier::new(SimConfig::new(4)),
            Box::new(Matmul::new(MatmulParams::default())),
        ),
        other => panic!("unknown overhead workload `{other}`"),
    }
}

/// Run one exploration; instrumented iff `instrumented`. Returns
/// `(wall_seconds, interleavings)`.
#[must_use]
pub fn explore_once(workload: &str, jobs: usize, instrumented: bool) -> (f64, u64) {
    let (verifier, prog) = verifier_for(workload);
    let mut opts = ExploreOptions {
        jobs,
        ..ExploreOptions::default()
    };
    if instrumented {
        opts.metrics = Some(CampaignMetrics::new());
        opts.trace = Some(CampaignTrace::to_writer(Box::new(io::sink())));
    }
    let run = |ds: &DecisionSet| verifier.instrumented_run(prog.as_ref(), ds);
    let start = Instant::now();
    let ex = explore_parallel(run, &opts);
    (start.elapsed().as_secs_f64(), ex.interleavings)
}

/// Measure `workload` bare and instrumented, `reps` explorations each,
/// interleaved A/B to cancel thermal and cache drift.
#[must_use]
pub fn measure(workload: &str, jobs: usize, reps: u32) -> OverheadPoint {
    // Warm-up: touch both code paths before timing.
    let (_, il_off) = explore_once(workload, jobs, false);
    let (_, il_on) = explore_once(workload, jobs, true);
    assert_eq!(
        il_off, il_on,
        "{workload}: instrumentation changed the interleaving count"
    );
    let mut off_total = 0.0;
    let mut on_total = 0.0;
    for _ in 0..reps {
        off_total += explore_once(workload, jobs, false).0;
        on_total += explore_once(workload, jobs, true).0;
    }
    OverheadPoint {
        workload: workload.to_owned(),
        reps,
        interleavings: il_off,
        off_s: off_total / f64::from(reps),
        on_s: on_total / f64::from(reps),
    }
}
