fn main() {
    let np: usize = std::env::var("NP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    let (table, _) = dampi_bench::table2::run_table2(np);
    table.print();
}
