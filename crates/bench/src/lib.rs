//! Shared helpers for the DAMPI benchmark harnesses.
//!
//! Each Criterion bench target in `benches/` regenerates one table or
//! figure of the paper; this small library holds the table-printing
//! utilities they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod overhead;
pub mod parallel;
pub mod protocol;
pub mod prune;
pub mod shard;
pub mod table;
pub mod table2;

pub use table::Table;
