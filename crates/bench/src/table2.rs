//! Table II row computation: DAMPI overhead (slowdown, R\*, C-leak,
//! R-leak) per benchmark. Shared by the bench target and the binary probe.

use dampi_core::{DampiVerifier, DecisionSet};
use dampi_mpi::{run_native, MpiProgram, SimConfig};
use dampi_workloads::parmetis::{Parmetis, ParmetisParams};
use dampi_workloads::{nas, spec};

use crate::Table;

/// One Table II row.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Benchmark name.
    pub program: String,
    /// Instrumented / native simulated-time ratio.
    pub slowdown: f64,
    /// Wildcard receives analyzed (R\*).
    pub wildcards: u64,
    /// Communicator leak detected.
    pub c_leak: bool,
    /// Request leak detected.
    pub r_leak: bool,
}

/// Measure one program at `np` ranks.
pub fn measure(np: usize, program: &dyn MpiProgram) -> OverheadRow {
    let sim = SimConfig::new(np);
    let native = run_native(&sim, program);
    assert!(
        native.succeeded(),
        "{} native run failed: {:?}",
        program.name(),
        native.fatal
    );
    let inst = DampiVerifier::new(sim).instrumented_run(program, &DecisionSet::self_run());
    assert!(
        inst.outcome.succeeded(),
        "{} instrumented run failed: {:?}",
        program.name(),
        inst.outcome.fatal
    );
    OverheadRow {
        program: program.name().to_owned(),
        slowdown: inst.outcome.makespan / native.makespan.max(1e-12),
        wildcards: inst.stats.wildcards,
        c_leak: inst.outcome.leaks.has_comm_leak(),
        r_leak: inst.outcome.leaks.has_request_leak(),
    }
}

/// The paper's Table II program list, in row order.
#[must_use]
pub fn table2_programs() -> Vec<(String, Box<dyn MpiProgram>)> {
    let mut programs: Vec<(String, Box<dyn MpiProgram>)> = vec![(
        "ParMETIS-3.1".to_owned(),
        Box::new(Parmetis::new(ParmetisParams::nominal(64, 0.3))),
    )];
    for (name, prog) in spec::all_nominal() {
        programs.push((name.to_owned(), prog));
    }
    for (name, prog) in nas::all_nominal() {
        programs.push((name.to_owned(), prog));
    }
    programs
}

/// Compute and render the whole table at `np` ranks.
#[must_use]
pub fn run_table2(np: usize) -> (Table, Vec<OverheadRow>) {
    let mut table = Table::new(
        &format!("Table II: DAMPI overhead, medium-large benchmarks at {np} procs"),
        &["Program", "Slowdown", "Total R*", "C-Leak", "R-Leak"],
    );
    let mut rows = Vec::new();
    for (name, prog) in table2_programs() {
        let row = measure(np, prog.as_ref());
        table.row(vec![
            name,
            format!("{:.2}x", row.slowdown),
            format!("{}", row.wildcards),
            if row.c_leak { "Yes" } else { "No" }.to_owned(),
            if row.r_leak { "Yes" } else { "No" }.to_owned(),
        ]);
        rows.push(row);
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_small_world() {
        let prog = dampi_workloads::nas::Ep::nominal();
        let row = measure(4, &prog);
        assert!(row.slowdown >= 1.0);
        assert_eq!(row.wildcards, 0);
        assert!(!row.c_leak);
    }
}
