//! Replay-cache benefit measurement: cold campaign vs warm re-verification.
//!
//! The incremental-verification promise is that re-verifying an unchanged
//! workload costs (almost) nothing: every subtree the cold campaign
//! committed is served from the content-addressed store, so the warm run
//! pays only the walk's bookkeeping. As in [`crate::parallel`] and
//! [`crate::shard`], every executed replay carries a fixed simulated
//! launch latency — on a real cluster each replay is an MPI job launch,
//! and the honest figure is how much of that launch bill the cache
//! eliminates.
//!
//! Correctness is asserted on every point: the warm run must reuse
//! *every* subtree (hit rate 1.0) and reproduce the cold run's
//! interleaving count and error set, or the measurement panics rather
//! than report a speedup for a wrong answer.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dampi_core::cache::plan_digest;
use dampi_core::scheduler::{explore_parallel, Exploration, ExploreOptions};
use dampi_core::{DampiVerifier, DecisionSet, ReplayCache};
use dampi_mpi::program::MpiProgram;
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::matmul::{Matmul, MatmulParams};
use dampi_workloads::patterns;

/// One measured workload: a cold campaign that populates the store and a
/// warm re-verification that must be served entirely from it.
#[derive(Debug, Clone)]
pub struct CachePoint {
    /// Workload name.
    pub workload: String,
    /// Explicit parameter string for the `BENCH_HISTORY.jsonl` series.
    pub params: String,
    /// Wall-clock seconds of the cold (store-populating) campaign.
    pub cold_wall_s: f64,
    /// Wall-clock seconds of the warm re-verification.
    pub warm_wall_s: f64,
    /// Warm-run hit rate: hits / (hits + misses). Asserted to be 1.0.
    pub warm_hit_rate: f64,
    /// Interleavings committed (identical cold and warm).
    pub interleavings: u64,
    /// Distinct errors found (identical cold and warm).
    pub errors: usize,
}

fn verifier_for(workload: &str) -> (Arc<DampiVerifier>, Arc<dyn MpiProgram>, String) {
    match workload {
        "symmetric_racers" => (
            Arc::new(DampiVerifier::new(
                SimConfig::new(4).with_policy(MatchPolicy::LowestRank),
            )),
            Arc::new(patterns::symmetric_racers()),
            "np=4 policy=lowest_rank replay_cache".to_owned(),
        ),
        "matmul" => (
            Arc::new(DampiVerifier::new(SimConfig::new(4))),
            Arc::new(Matmul::new(MatmulParams::default())),
            "np=4 n=8 rounds_per_slave=2 replay_cache".to_owned(),
        ),
        other => panic!("unknown cache workload `{other}`"),
    }
}

fn opts(cache: Arc<ReplayCache>) -> ExploreOptions {
    ExploreOptions {
        // Same rationale as the shard harness: measure the executor, not
        // the retry policy, and expose a wide frontier.
        divergence_retries: 0,
        branch_on_guided: true,
        cache: Some(cache),
        ..ExploreOptions::default()
    }
}

fn campaign(
    verifier: &Arc<DampiVerifier>,
    prog: &Arc<dyn MpiProgram>,
    cache: &Arc<ReplayCache>,
    replay_latency: Duration,
) -> (Exploration, f64) {
    let opts = opts(Arc::clone(cache));
    let start = Instant::now();
    let ex = explore_parallel(
        |ds: &DecisionSet| {
            std::thread::sleep(replay_latency);
            verifier.instrumented_run(prog.as_ref(), ds)
        },
        &opts,
    );
    let wall = start.elapsed().as_secs_f64();
    (ex, wall)
}

/// Measure one workload cold-then-warm against a fresh store, asserting
/// total reuse and result parity on the warm run.
#[must_use]
pub fn measure(workload: &str, replay_latency: Duration) -> CachePoint {
    let (verifier, prog, params) = verifier_for(workload);
    let params = format!("{params} latency={}ms", replay_latency.as_millis());
    let dir = std::env::temp_dir().join(format!(
        "dampi-bench-cache-{}-{workload}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = Arc::new(
        ReplayCache::open(
            &dir,
            dampi_core::shard::protocol::checksum(workload.as_bytes()),
            plan_digest(None),
            false,
        )
        .expect("open bench cache"),
    );

    let (cold, cold_wall_s) = campaign(&verifier, &prog, &cache, replay_latency);
    assert_eq!(cold.cache_hits, 0, "{workload}: fresh store cannot hit");
    let (warm, warm_wall_s) = campaign(&verifier, &prog, &cache, replay_latency);
    assert_eq!(
        warm.interleavings, cold.interleavings,
        "{workload}: warm run diverged from cold in interleavings"
    );
    assert_eq!(
        warm.errors.len(),
        cold.errors.len(),
        "{workload}: warm run diverged from cold in error count"
    );
    assert_eq!(
        warm.cache_misses, 0,
        "{workload}: warm run must be served entirely from the store"
    );
    let warm_hit_rate = warm.cache_hits as f64 / (warm.cache_hits + warm.cache_misses) as f64;
    let _ = std::fs::remove_dir_all(&dir);
    CachePoint {
        workload: workload.to_owned(),
        params,
        cold_wall_s,
        warm_wall_s,
        warm_hit_rate,
        interleavings: cold.interleavings,
        errors: cold.errors.len(),
    }
}

/// Render points as the `BENCH_replay_cache.json` snapshot format.
#[must_use]
pub fn to_json(latency: Duration, points: &[CachePoint]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"replay_latency_ms\": {},\n  \"workloads\": {{\n",
        latency.as_millis()
    ));
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!("    \"{}\": {{\n", p.workload));
        out.push_str(&format!("      \"params\": \"{}\",\n", p.params));
        out.push_str(&format!(
            "      \"interleavings\": {},\n      \"errors\": {},\n",
            p.interleavings, p.errors
        ));
        out.push_str(&format!(
            "      \"cold_wall_s\": {:.4},\n      \"warm_wall_s\": {:.4},\n      \"warm_hit_rate\": {:.4},\n      \"speedup_x\": {:.2}\n",
            p.cold_wall_s,
            p.warm_wall_s,
            p.warm_hit_rate,
            p.cold_wall_s / p.warm_wall_s.max(1e-9)
        ));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}
