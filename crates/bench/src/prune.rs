//! Static-pruning measurement (`verify --prune-static` vs. plain verify).
//!
//! For each workload, run the campaign twice: once plain, once with the
//! prune plan derived by `dampi-analysis` from a traced free run (the
//! pruned campaign reuses that run as its `SELF_RUN`, exactly like the
//! CLI's `--prune-static` path). The honest metric is the replay count —
//! wall-clock follows it, since the simulator's replays are microseconds
//! while a real deployment's are full MPI job launches.
//!
//! The soundness contract is asserted on every point, not sampled: the
//! pruned campaign's error set must be byte-identical to the plain one's
//! and its interleaving count must never exceed it, or the measurement
//! panics rather than report a reduction over a wrong answer.

use std::time::Instant;

use dampi_analysis::analyze;
use dampi_core::bounds::MixingBound;
use dampi_core::report::VerificationReport;
use dampi_core::{DampiConfig, DampiVerifier};
use dampi_mpi::program::MpiProgram;
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::adlb::{Adlb, AdlbParams};
use dampi_workloads::matmul::{Matmul, MatmulParams};
use dampi_workloads::patterns;

/// One measured workload: plain vs. pruned campaign.
#[derive(Debug, Clone)]
pub struct PrunePoint {
    /// Workload name.
    pub workload: String,
    /// Explicit configuration of the point (np, workload parameters,
    /// match policy, bound) — two snapshots are comparable only when
    /// their `params` strings are identical.
    pub params: String,
    /// Interleavings the plain campaign replayed.
    pub base_interleavings: u64,
    /// Interleavings the pruned campaign replayed.
    pub pruned_interleavings: u64,
    /// Frontier forks the plan dropped (from the pruned report).
    pub alternates_pruned: u64,
    /// Wildcards the analysis proved deterministic.
    pub wildcards_deterministic: u64,
    /// Additional forks dropped by the cross-epoch fixed-point
    /// refinement (disjoint from `alternates_pruned`).
    pub refined_alternates_pruned: u64,
    /// Additional wildcard instances the refinement proved deterministic.
    pub refined_wildcards_deterministic: u64,
    /// Rank-symmetry orbits the analysis found on this run's trace.
    pub orbits: usize,
    /// Receive points whose payload digests were masked to license an
    /// orbit merge (payload-oblivious symmetry).
    pub oblivious_receives: usize,
    /// Wall-clock seconds of the plain campaign.
    pub base_wall_s: f64,
    /// Wall-clock seconds of the pruned campaign, including the analysis
    /// passes (the shared traced free run is outside both timings).
    pub pruned_wall_s: f64,
    /// Errors found (identical across the two campaigns by assertion).
    pub errors: usize,
}

fn verifier_for(workload: &str) -> (DampiVerifier, Box<dyn MpiProgram>, String) {
    match workload {
        "symmetric_racers" => (
            DampiVerifier::new(SimConfig::new(4).with_policy(MatchPolicy::LowestRank)),
            Box::new(patterns::symmetric_racers()),
            "np=4 policy=lowest_rank bound=unbounded".to_owned(),
        ),
        "matmul" => (
            DampiVerifier::new(SimConfig::new(4)),
            Box::new(Matmul::new(MatmulParams::default())),
            "np=4 n=8 rounds_per_slave=2 mode=content bound=unbounded".to_owned(),
        ),
        // Acknowledgement-mode matmul: slaves verify locally and ack with
        // empty payloads, so task content provably never steers behavior
        // and the payload-oblivious pass merges the whole slave pool.
        "matmul_ack" => (
            DampiVerifier::new(SimConfig::new(4)),
            Box::new(Matmul::new(MatmulParams {
                ack_results: true,
                ..MatmulParams::default()
            })),
            "np=4 n=8 rounds_per_slave=2 mode=ack bound=unbounded".to_owned(),
        ),
        // ADLB's unbounded space is enormous; the paper explores it under
        // bounded mixing (Fig. 9), and so does this measurement — both
        // arms share the bound, so the comparison stays apples-to-apples.
        // np 16 over-provisions the worker pool: default params queue 12
        // work items for 15 workers, so at least three workers retire
        // without ever receiving a task. Those zero-item workers have
        // digest-identical traces (one empty GET, one DONE) and form a
        // guaranteed symmetry orbit — the sound reduction the digested
        // signatures still license on a task-pool workload.
        "adlb" => (
            DampiVerifier::with_config(
                SimConfig::new(16),
                DampiConfig::default().with_bound(MixingBound::K(1)),
            ),
            Box::new(Adlb::new(AdlbParams::default())),
            "np=16 nservers=1 seed_items=4 spawn=1x2 bound=k1".to_owned(),
        ),
        other => panic!("unknown pruning workload `{other}`"),
    }
}

fn error_keys(report: &VerificationReport) -> Vec<(usize, String)> {
    let mut keys: Vec<(usize, String)> = report
        .errors
        .iter()
        .map(|e| (e.rank, e.error.to_string()))
        .collect();
    keys.sort();
    keys
}

/// Run `workload` plain and pruned, asserting the soundness contract.
///
/// Both campaigns grow from the *same* traced free run: task-pool
/// workloads (matmul, ADLB) schedule nondeterministically across free
/// runs, so two independent runs would compare two different frontiers
/// and the interleaving counts would not be comparable at all.
#[must_use]
pub fn measure(workload: &str) -> PrunePoint {
    let (verifier, prog, params) = verifier_for(workload);
    let (events, run) = verifier.traced_run(prog.as_ref());

    let start = Instant::now();
    let base = verifier.verify_with_first_run(prog.as_ref(), run.clone());
    let base_wall_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let analysis = analyze(prog.name(), verifier.sim.nprocs, &events, &run);
    let orbits = analysis.plan.orbits.len();
    let oblivious_receives = analysis.plan.oblivious_receives.len();
    let pruned_verifier = verifier.clone().with_prune_plan(analysis.prune_plan());
    let pruned = pruned_verifier.verify_with_first_run(prog.as_ref(), run);
    let pruned_wall_s = start.elapsed().as_secs_f64();

    assert_eq!(
        error_keys(&base),
        error_keys(&pruned),
        "{workload}: pruned campaign changed the error set"
    );
    assert!(
        pruned.interleavings <= base.interleavings,
        "{workload}: pruning grew the campaign ({} -> {})",
        base.interleavings,
        pruned.interleavings
    );

    PrunePoint {
        workload: workload.to_owned(),
        params,
        base_interleavings: base.interleavings,
        pruned_interleavings: pruned.interleavings,
        alternates_pruned: pruned.alternates_pruned,
        wildcards_deterministic: pruned.wildcards_deterministic,
        refined_alternates_pruned: pruned.refined_alternates_pruned,
        refined_wildcards_deterministic: pruned.refined_wildcards_deterministic,
        orbits,
        oblivious_receives,
        base_wall_s,
        pruned_wall_s,
        errors: base.errors.len(),
    }
}

/// JSON snapshot (`BENCH_prune_static.json`).
#[must_use]
pub fn to_json(points: &[PrunePoint]) -> String {
    let mut out = String::from("{\n  \"workloads\": {\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"params\": \"{}\", \"base_interleavings\": {}, \
             \"pruned_interleavings\": {}, \"alternates_pruned\": {}, \
             \"wildcards_deterministic\": {}, \"refined_alternates_pruned\": {}, \
             \"refined_wildcards_deterministic\": {}, \"orbits\": {}, \
             \"oblivious_receives\": {}, \"base_wall_s\": {:.4}, \
             \"pruned_wall_s\": {:.4}, \"errors\": {}}}{}\n",
            p.workload,
            p.params,
            p.base_interleavings,
            p.pruned_interleavings,
            p.alternates_pruned,
            p.wildcards_deterministic,
            p.refined_alternates_pruned,
            p.refined_wildcards_deterministic,
            p.orbits,
            p.oblivious_receives,
            p.base_wall_s,
            p.pruned_wall_s,
            p.errors,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}
