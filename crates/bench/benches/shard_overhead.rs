//! **Process-sharding overhead — supervisor protocol tax and speedup.**
//!
//! Wall-clock of a sharded campaign (supervisor + in-process worker
//! stand-ins over the real frame protocol) at fleet widths 1, 2, and 4,
//! against the unsharded `jobs = 1` walk, on `symmetric_racers` (the
//! parity anchor) and matmul (a deep frontier). Each replay carries a
//! fixed simulated launch latency, as in `parallel_explore`: in a real
//! deployment every replay is an MPI job launch, and the honest question
//! is whether the supervisor's serialization + dispatch round-trip stays
//! hidden inside that latency.
//!
//! Expected shape: `shards = 1` tracks the baseline to within the
//! protocol tax (small constant per replay); wider fleets shrink
//! wall-clock just like `--jobs` does. Interleaving counts and error
//! sets are asserted identical on every point — an overhead figure for a
//! wrong answer aborts the bench.
//!
//! Set `DAMPI_BENCH_JSON=<path>` to also write the
//! `BENCH_shard_overhead.json` snapshot.

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use dampi_bench::shard::{measure, sweep, to_json};
use dampi_bench::Table;

fn replay_latency() -> Duration {
    if std::env::var("DAMPI_BENCH_FAST").is_ok() {
        Duration::from_millis(4)
    } else {
        Duration::from_millis(20)
    }
}

fn print_figure() {
    let latency = replay_latency();
    let mut table = Table::new(
        "Shard overhead: supervisor + frame protocol vs in-process walk",
        &["workload", "mode", "interleavings", "wall (s)", "vs jobs=1"],
    );
    let mut sweeps = Vec::new();
    for workload in ["symmetric_racers", "matmul"] {
        let points = sweep(workload, &[1, 2, 4], latency);
        let base_wall = points[0].wall_s;
        for p in &points {
            let mode = if p.shards == 0 {
                "jobs=1".to_owned()
            } else {
                format!("shards={}", p.shards)
            };
            table.row(vec![
                p.workload.clone(),
                mode,
                p.interleavings.to_string(),
                format!("{:.4}", p.wall_s),
                format!("{:.2}x", p.wall_s / base_wall),
            ]);
        }
        sweeps.push(points);
    }
    table.print();
    if let Ok(path) = std::env::var("DAMPI_BENCH_JSON") {
        std::fs::write(&path, to_json(latency, &sweeps)).expect("write snapshot");
        eprintln!("wrote {path}");
    }
}

fn bench(c: &mut Criterion) {
    let latency = replay_latency();
    let mut g = c.benchmark_group("shard_overhead");
    g.sample_size(10);
    g.bench_function("racers_jobs1", |b| {
        b.iter(|| measure("symmetric_racers", 0, latency));
    });
    g.bench_function("racers_shards2", |b| {
        b.iter(|| measure("symmetric_racers", 2, latency));
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
