//! **Fig. 8 — matrix multiplication with bounded mixing applied.**
//!
//! Number of interleavings DAMPI explores for the matmul at 2–8 processes
//! under mixing bounds k ∈ {0, 1, 2} and with no bounds.
//!
//! Expected shape: the unbounded count explodes with process count
//! (factorially in the number of slaves); bounded mixing collapses it, and
//! the count grows roughly *linearly* as k increases — the property the
//! paper highlights (users can ratchet k up gradually).

use criterion::{criterion_group, Criterion};
use dampi_bench::Table;
use dampi_core::{DampiConfig, DampiVerifier, MixingBound};
use dampi_mpi::SimConfig;
use dampi_workloads::matmul::{Matmul, MatmulParams};

const CAP: u64 = 100_000;

fn program() -> Matmul {
    Matmul::new(MatmulParams {
        n: 8,
        rounds_per_slave: 1,
        task_cost: 0.0,
        ..Default::default()
    })
}

fn interleavings(np: usize, bound: MixingBound) -> (u64, bool) {
    let v = DampiVerifier::with_config(
        SimConfig::new(np),
        DampiConfig::default()
            .with_bound(bound)
            .with_max_interleavings(CAP),
    );
    let report = v.verify(&program());
    assert!(report.errors.is_empty(), "{report}");
    (report.interleavings, report.budget_exhausted)
}

fn print_figure() {
    let max_np = if std::env::var("DAMPI_BENCH_FAST").is_ok() {
        6
    } else {
        8
    };
    let mut table = Table::new(
        "Fig. 8: matmul interleavings explored under bounded mixing",
        &["procs", "k=0", "k=1", "k=2", "no bounds"],
    );
    for np in 2..=max_np {
        let mut cells = vec![np.to_string()];
        for bound in [
            MixingBound::K(0),
            MixingBound::K(1),
            MixingBound::K(2),
            MixingBound::Unbounded,
        ] {
            let (n, capped) = interleavings(np, bound);
            cells.push(if capped {
                format!(">{n}")
            } else {
                n.to_string()
            });
        }
        table.row(cells);
    }
    table.print();
    println!("(k-bounded counts grow roughly linearly in k; unbounded is factorial in slaves)");
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("bounded_k1_np6", |b| {
        b.iter(|| interleavings(6, MixingBound::K(1)));
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
