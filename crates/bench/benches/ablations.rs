//! **Ablations** — the design choices DESIGN.md calls out, measured.
//!
//! 1. *Piggyback mechanism* (§II-D): separate shadow-communicator messages
//!    (DAMPI's choice) vs. payload packing — instrumented makespans.
//! 2. *Clock mode* (§II-C/§II-F): Lamport vs. vector — piggyback wire
//!    bytes per message as the world grows (the scalability argument for
//!    Lamport clocks) and instrumented makespans.
//! 3. *Native match-policy bias* (§I): whether a single native run of the
//!    Fig. 3 program exposes its bug under different runtime policies, vs.
//!    DAMPI's guaranteed coverage.
//! 4. *Branching on guided epochs*: the paper's algorithm does not branch
//!    on alternates discovered for already-forced epochs; measure what the
//!    DPOR-style extension would add.

use criterion::{criterion_group, Criterion};
use dampi_bench::Table;
use dampi_core::pb::stamp_wire_bytes;
use dampi_core::{ClockMode, DampiConfig, DampiVerifier, DecisionSet, PiggybackMechanism};
use dampi_mpi::{run_native, MatchPolicy, SimConfig};
use dampi_workloads::matmul::{Matmul, MatmulParams};
use dampi_workloads::patterns;
use dampi_workloads::spec::Lammps;

fn pb_mechanism_ablation() {
    let mut table = Table::new(
        "Ablation: piggyback mechanism (126.lammps, np=64, instrumented makespan)",
        &["mechanism", "makespan (s)", "vs native"],
    );
    let prog = Lammps::nominal();
    let sim = SimConfig::new(64);
    let native = run_native(&sim, &prog).makespan;
    for (name, mech) in [
        ("separate message", PiggybackMechanism::SeparateMessage),
        ("payload packing", PiggybackMechanism::PayloadPacking),
    ] {
        let v =
            DampiVerifier::with_config(sim.clone(), DampiConfig::default().with_piggyback(mech));
        let m = v
            .instrumented_run(&prog, &DecisionSet::self_run())
            .outcome
            .makespan;
        table.row(vec![
            name.to_owned(),
            format!("{m:.4}"),
            format!("{:.2}x", m / native),
        ]);
    }
    table.print();
}

fn clock_mode_ablation() {
    let mut table = Table::new(
        "Ablation: clock mode — piggyback wire cost and overhead",
        &[
            "procs",
            "lamport B/msg",
            "vector B/msg",
            "lamport slowdown",
            "vector slowdown",
        ],
    );
    for np in [16usize, 64, 256] {
        let prog = dampi_workloads::spec::Milc::nominal();
        let sim = SimConfig::new(np);
        let native = run_native(&sim, &prog).makespan;
        let slow = |mode: ClockMode| {
            let v = DampiVerifier::with_config(
                sim.clone(),
                DampiConfig::default().with_clock_mode(mode),
            );
            v.instrumented_run(&prog, &DecisionSet::self_run())
                .outcome
                .makespan
                / native
        };
        table.row(vec![
            np.to_string(),
            stamp_wire_bytes(ClockMode::Lamport, np).to_string(),
            stamp_wire_bytes(ClockMode::Vector, np).to_string(),
            format!("{:.2}x", slow(ClockMode::Lamport)),
            format!("{:.2}x", slow(ClockMode::Vector)),
        ]);
    }
    table.print();
    println!("(vector stamps grow linearly with the world: the §II-C scalability argument)");
}

fn policy_bias_ablation() {
    let mut table = Table::new(
        "Ablation: native runtime bias vs DAMPI coverage (Fig. 3 program)",
        &["method", "bug found?"],
    );
    for (name, policy) in [
        ("native, LowestRank bias", MatchPolicy::LowestRank),
        ("native, ArrivalOrder", MatchPolicy::ArrivalOrder),
        ("native, Seeded(7)", MatchPolicy::Seeded(7)),
    ] {
        let out = run_native(&SimConfig::new(3).with_policy(policy), &patterns::fig3());
        table.row(vec![
            name.to_owned(),
            if out.succeeded() {
                "no (masked)"
            } else {
                "yes"
            }
            .to_owned(),
        ]);
    }
    let report = DampiVerifier::new(SimConfig::new(3).with_policy(MatchPolicy::LowestRank))
        .verify(&patterns::fig3());
    table.row(vec![
        "DAMPI (guaranteed coverage)".to_owned(),
        if report.errors.is_empty() {
            "no".to_owned()
        } else {
            format!("yes ({} interleavings)", report.interleavings)
        },
    ]);
    table.print();
}

fn branch_on_guided_ablation() {
    let prog = Matmul::new(MatmulParams {
        n: 6,
        rounds_per_slave: 1,
        task_cost: 0.0,
        ..Default::default()
    });
    let run = |branch: bool| {
        let mut cfg = DampiConfig::default().with_max_interleavings(50_000);
        cfg.branch_on_guided = branch;
        DampiVerifier::with_config(SimConfig::new(5), cfg)
            .verify(&prog)
            .interleavings
    };
    let mut table = Table::new(
        "Ablation: branching on guided-epoch discoveries (matmul, np=5)",
        &["mode", "interleavings"],
    );
    table.row(vec![
        "paper (no guided branching)".to_owned(),
        run(false).to_string(),
    ]);
    table.row(vec![
        "DPOR-style (branch on guided)".to_owned(),
        run(true).to_string(),
    ]);
    table.print();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("lammps_separate_pb_np32", |b| {
        let prog = Lammps::nominal();
        let v = DampiVerifier::new(SimConfig::new(32));
        b.iter(|| v.instrumented_run(&prog, &DecisionSet::self_run()));
    });
    g.bench_function("lammps_packed_pb_np32", |b| {
        let prog = Lammps::nominal();
        let v = DampiVerifier::with_config(
            SimConfig::new(32),
            DampiConfig::default().with_piggyback(PiggybackMechanism::PayloadPacking),
        );
        b.iter(|| v.instrumented_run(&prog, &DecisionSet::self_run()));
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    pb_mechanism_ablation();
    clock_mode_ablation();
    policy_bias_ablation();
    branch_on_guided_ablation();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
