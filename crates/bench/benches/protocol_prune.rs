//! **Protocol-guided pruning — replay count vs. the v2 plan.**
//!
//! Three campaigns per workload from the same traced free run: plain,
//! v2-pruned (`analyze`), and v3-pruned (`analyze_with_protocol` against
//! the committed `.protocol` spec). The interesting column is the
//! v2 → v3 delta: schedules the session type refutes that trace-local
//! analysis cannot.
//!
//! Expected shape: `ordered_stages` is the headline — the stage2→sink
//! token serializes the two DATA messages, but rank 0 never observes the
//! token, so vector clocks keep the alternate and v2 replays 2; the
//! protocol pins both wildcards and the campaign collapses to 1.
//! `protocol_demo` is the honest no-op row — both RESULT arrivals are
//! genuinely racy under the spec, so v3 must prune exactly nothing.
//! On every point all three error sets are asserted byte-identical.
//!
//! Set `DAMPI_BENCH_JSON=<path>` to also write the
//! `BENCH_protocol_prune.json` snapshot. `DAMPI_BENCH_FAST=1` skips the
//! Criterion timing loop (CI smoke runs the figure + assertions only).

use criterion::{criterion_group, Criterion};
use dampi_bench::protocol::{measure, to_json};
use dampi_bench::Table;

fn print_figure() {
    let mut table = Table::new(
        "Protocol-guided pruning: replays, plain vs. v2 vs. --protocol",
        &[
            "workload",
            "plain il",
            "v2 il",
            "v3 il",
            "proto dropped",
            "proto det wc",
            "plan det/inf",
            "v2 (s)",
            "v3 (s)",
        ],
    );
    let mut points = Vec::new();
    for workload in ["ordered_stages", "protocol_demo"] {
        let p = measure(workload);
        table.row(vec![
            p.workload.clone(),
            p.base_interleavings.to_string(),
            p.v2_interleavings.to_string(),
            p.protocol_interleavings.to_string(),
            p.protocol_alternates_pruned.to_string(),
            p.protocol_wildcards_deterministic.to_string(),
            format!("{}/{}", p.plan_deterministic, p.plan_infeasible),
            format!("{:.4}", p.v2_wall_s),
            format!("{:.4}", p.protocol_wall_s),
        ]);
        points.push(p);
    }
    table.print();
    if let Ok(path) = std::env::var("DAMPI_BENCH_JSON") {
        std::fs::write(&path, to_json(&points)).expect("write snapshot");
        eprintln!("wrote {path}");
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_prune");
    g.sample_size(10);
    g.bench_function("ordered_stages_v2_vs_protocol", |b| {
        b.iter(|| measure("ordered_stages"));
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    if std::env::var("DAMPI_BENCH_FAST").is_err() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}
