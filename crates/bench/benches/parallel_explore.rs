//! **Parallel frontier exploration — worker-pool speedup.**
//!
//! Wall-clock time and throughput of `explore_parallel` at 1, 2, and 4
//! workers on `symmetric_racers` (the parity anchor), matmul (a deep
//! multi-hundred-interleaving frontier), and ParMETIS (deterministic —
//! one interleaving — so the pool must cost nothing). Each replay carries
//! a fixed simulated launch latency; see [`dampi_bench::parallel`] for
//! why latency hiding is the honest metric on a driver node whose cores
//! the replays themselves already saturate.
//!
//! Expected shape: matmul's wall-clock shrinks ≥1.5x at 4 workers;
//! `symmetric_racers` improves but saturates near its fork-DAG bound
//! (~7 interleavings over a dependency chain of ~5 — each fork's children
//! are derived from its own replay's epoch log, so a narrow tree caps the
//! attainable overlap at `nodes / depth` no matter the worker count);
//! ParMETIS stays flat at ~1x. Interleaving counts and error sets are
//! asserted identical across worker counts — a speedup over a wrong
//! answer aborts the bench.
//!
//! Set `DAMPI_BENCH_JSON=<path>` to also write the
//! `BENCH_parallel_explore.json` snapshot.

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use dampi_bench::parallel::{measure, sweep, to_json};
use dampi_bench::Table;

fn replay_latency() -> Duration {
    if std::env::var("DAMPI_BENCH_FAST").is_ok() {
        Duration::from_millis(4)
    } else {
        Duration::from_millis(20)
    }
}

fn print_figure() {
    let latency = replay_latency();
    let mut table = Table::new(
        "Parallel exploration: wall-clock by worker count (replay latency included)",
        &[
            "workload",
            "jobs",
            "interleavings",
            "wall (s)",
            "il/s",
            "speedup",
        ],
    );
    let mut sweeps = Vec::new();
    for workload in ["symmetric_racers", "matmul", "parmetis"] {
        let points = sweep(workload, &[1, 2, 4], latency);
        let base_wall = points[0].wall_s;
        for p in &points {
            table.row(vec![
                p.workload.clone(),
                p.jobs.to_string(),
                p.interleavings.to_string(),
                format!("{:.4}", p.wall_s),
                format!("{:.1}", p.rate),
                format!("{:.2}x", base_wall / p.wall_s),
            ]);
        }
        sweeps.push(points);
    }
    table.print();
    if let Ok(path) = std::env::var("DAMPI_BENCH_JSON") {
        std::fs::write(&path, to_json(latency, &sweeps)).expect("write snapshot");
        eprintln!("wrote {path}");
    }
}

fn bench(c: &mut Criterion) {
    let latency = replay_latency();
    let mut g = c.benchmark_group("parallel_explore");
    g.sample_size(10);
    for jobs in [1usize, 4] {
        let name = format!("racers_jobs{jobs}");
        g.bench_function(&name, |b| {
            b.iter(|| measure("symmetric_racers", jobs, latency));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
