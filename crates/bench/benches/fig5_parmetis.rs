//! **Fig. 5 — ParMETIS-3.1: DAMPI vs. ISP.**
//!
//! Verification time (simulated seconds) of the deterministic ParMETIS
//! kernel under ISP's centralized scheduler vs. DAMPI, as process count
//! grows from 4 to 32 (the paper's x-axis), plus DAMPI-only points out to
//! 1024 to demonstrate the "negligible overhead until beyond 1K" claim.
//!
//! Expected shape: ISP's curve climbs super-linearly (every MPI call
//! serializes through one scheduler while the total op count grows ~2.5x
//! per doubling); DAMPI stays within a small factor of native throughout.

use criterion::{criterion_group, Criterion};
use dampi_bench::Table;
use dampi_core::{DampiVerifier, DecisionSet};
use dampi_isp::IspVerifier;
use dampi_mpi::{run_native, SimConfig};
use dampi_workloads::parmetis::{Parmetis, ParmetisParams};

fn scale() -> f64 {
    if std::env::var("DAMPI_BENCH_FAST").is_ok() {
        0.1
    } else {
        0.3
    }
}

fn measure(np: usize, with_isp: bool) -> (f64, f64, Option<f64>) {
    let prog = Parmetis::new(ParmetisParams::nominal(np, scale()));
    let sim = SimConfig::new(np);
    let native = run_native(&sim, &prog);
    assert!(native.succeeded(), "{:?}", native.fatal);
    let dampi = DampiVerifier::new(sim.clone())
        .instrumented_run(&prog, &DecisionSet::self_run())
        .outcome;
    assert!(dampi.succeeded(), "{:?}", dampi.fatal);
    let isp = with_isp.then(|| {
        let out = IspVerifier::new(sim)
            .instrumented_run(&prog, &DecisionSet::self_run())
            .outcome;
        assert!(out.succeeded(), "{:?}", out.fatal);
        out.makespan
    });
    (native.makespan, dampi.makespan, isp)
}

fn print_figure() {
    let mut table = Table::new(
        "Fig. 5: ParMETIS-3.1 verification time (simulated seconds), DAMPI vs ISP",
        &[
            "procs",
            "native",
            "DAMPI",
            "ISP",
            "DAMPI/native",
            "ISP/native",
        ],
    );
    for np in [4usize, 8, 12, 16, 20, 24, 28, 32] {
        let (native, dampi, isp) = measure(np, true);
        let isp = isp.expect("requested");
        table.row(vec![
            np.to_string(),
            format!("{native:.4}"),
            format!("{dampi:.4}"),
            format!("{isp:.4}"),
            format!("{:.2}x", dampi / native),
            format!("{:.2}x", isp / native),
        ]);
    }
    // DAMPI-only extension: the scalability headroom ISP cannot reach.
    for np in [64usize, 128, 256, 512, 1024] {
        let (native, dampi, _) = measure(np, false);
        table.row(vec![
            np.to_string(),
            format!("{native:.4}"),
            format!("{dampi:.4}"),
            "-".to_owned(),
            format!("{:.2}x", dampi / native),
            "-".to_owned(),
        ]);
    }
    table.print();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("dampi_parmetis_np16", |b| {
        b.iter(|| measure(16, false));
    });
    g.bench_function("isp_parmetis_np16", |b| {
        b.iter(|| {
            let prog = Parmetis::new(ParmetisParams::nominal(16, scale()));
            IspVerifier::new(SimConfig::new(16)).instrumented_run(&prog, &DecisionSet::self_run())
        });
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
