//! **Table I — statistics of MPI operations in ParMETIS-3.1.**
//!
//! Operation census of the ParMETIS kernel at 8–128 processes, classified
//! as in the paper (Send-Recv / Collective / Wait; local operations not
//! counted), with total and per-process rows.
//!
//! Expected shape (the paper's observation that explains Fig. 5): total
//! operations grow ~2.5x per process-doubling, per-process operations only
//! ~1.3x, and collectives per process *decrease* with scale — so a
//! centralized scheduler's load grows almost twice as fast as any single
//! DAMPI process's.

use criterion::{criterion_group, Criterion};
use dampi_bench::Table;
use dampi_mpi::interpose::StatsLayer;
use dampi_mpi::stats::{OpStats, StatsCollector};
use dampi_mpi::{run_with_layers, SimConfig};
use dampi_workloads::parmetis::{Parmetis, ParmetisParams};
use std::sync::Arc;

fn scale() -> f64 {
    if std::env::var("DAMPI_BENCH_FAST").is_ok() {
        0.1
    } else {
        0.3
    }
}

fn census(np: usize) -> (OpStats, OpStats) {
    let collector = StatsCollector::new();
    let prog = Parmetis::new(ParmetisParams::nominal(np, scale()));
    let c2 = Arc::clone(&collector);
    let out = run_with_layers(&SimConfig::new(np), &prog, &move |_, pmpi| {
        Ok(Box::new(StatsLayer::new(pmpi, Arc::clone(&c2))))
    });
    assert!(out.succeeded(), "{:?}", out.fatal);
    (collector.total(), collector.per_proc())
}

fn fmt_k(v: u64) -> String {
    if v >= 10_000 {
        format!("{}K", v / 1000)
    } else if v >= 1000 {
        format!("{:.1}K", v as f64 / 1000.0)
    } else {
        v.to_string()
    }
}

fn print_table() {
    let nps = [8usize, 16, 32, 64, 128];
    let data: Vec<(OpStats, OpStats)> = nps.iter().map(|&np| census(np)).collect();
    let header: Vec<String> = std::iter::once("MPI Operation Type".to_owned())
        .chain(nps.iter().map(|np| format!("procs={np}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table I: statistics of MPI operations in ParMETIS-3.1",
        &header_refs,
    );
    type RowFn = Box<dyn Fn(&(OpStats, OpStats)) -> u64>;
    let rows: [(&str, RowFn); 8] = [
        ("All", Box::new(|d| d.0.total())),
        ("All per proc.", Box::new(|d| d.1.total())),
        ("Send-Recv", Box::new(|d| d.0.send_recv)),
        ("Send-Recv per proc", Box::new(|d| d.1.send_recv)),
        ("Collective", Box::new(|d| d.0.collective)),
        ("Collective per proc", Box::new(|d| d.1.collective)),
        ("Wait", Box::new(|d| d.0.wait)),
        ("Wait per proc", Box::new(|d| d.1.wait)),
    ];
    for (label, f) in &rows {
        let mut cells = vec![(*label).to_owned()];
        cells.extend(data.iter().map(|d| fmt_k(f(d))));
        table.row(cells);
    }
    table.print();

    // Shape summary: growth factors per doubling.
    let t_growth: Vec<f64> = data
        .windows(2)
        .map(|w| w[1].0.total() as f64 / w[0].0.total() as f64)
        .collect();
    let p_growth: Vec<f64> = data
        .windows(2)
        .map(|w| w[1].1.total() as f64 / w[0].1.total() as f64)
        .collect();
    println!(
        "total-op growth per doubling: {:?} (paper ~2.5x)",
        t_growth
            .iter()
            .map(|g| format!("{g:.2}x"))
            .collect::<Vec<_>>()
    );
    println!(
        "per-proc growth per doubling: {:?} (paper ~1.3x)",
        p_growth
            .iter()
            .map(|g| format!("{g:.2}x"))
            .collect::<Vec<_>>()
    );
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("census_np32", |b| b.iter(|| census(32)));
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_table();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
