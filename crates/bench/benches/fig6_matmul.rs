//! **Fig. 6 — matrix multiplication: DAMPI vs. ISP.**
//!
//! Time (simulated seconds, summed over replays) to explore N
//! interleavings of the master/slave matmul for N ∈ {250, 500, 750, 1000},
//! under DAMPI and under ISP.
//!
//! Expected shape: both curves are linear in the number of interleavings
//! (each replay is a full re-execution), but ISP's slope is vastly larger
//! — every MPI call of every replay pays the centralized synchronous
//! transaction, whereas DAMPI's replays run at near-native speed.

use criterion::{criterion_group, Criterion};
use dampi_bench::Table;
use dampi_core::{DampiConfig, DampiVerifier};
use dampi_isp::IspVerifier;
use dampi_mpi::SimConfig;
use dampi_workloads::matmul::{Matmul, MatmulParams};

const NP: usize = 8;

fn program() -> Matmul {
    Matmul::new(MatmulParams {
        n: 8,
        rounds_per_slave: 2,
        task_cost: 1e-4,
        ..Default::default()
    })
}

fn dampi_time(budget: u64) -> (u64, f64) {
    let v = DampiVerifier::with_config(
        SimConfig::new(NP),
        DampiConfig::default().with_max_interleavings(budget),
    );
    let report = v.verify(&program());
    (report.interleavings, report.total_virtual_time)
}

fn isp_time(budget: u64) -> (u64, f64) {
    let mut v = IspVerifier::new(SimConfig::new(NP));
    v.cfg.max_interleavings = Some(budget);
    let report = v.verify(&program());
    (report.interleavings, report.total_virtual_time)
}

fn print_figure() {
    let budgets: &[u64] = if std::env::var("DAMPI_BENCH_FAST").is_ok() {
        &[50, 100]
    } else {
        &[250, 500, 750, 1000]
    };
    let mut table = Table::new(
        "Fig. 6: matmul — time to explore N interleavings (simulated seconds)",
        &["interleavings", "DAMPI", "ISP", "ISP/DAMPI"],
    );
    for &budget in budgets {
        let (nd, td) = dampi_time(budget);
        let (ni, ti) = isp_time(budget);
        assert_eq!(nd, budget, "matmul has enough interleavings");
        assert_eq!(ni, budget);
        table.row(vec![
            budget.to_string(),
            format!("{td:.2}"),
            format!("{ti:.2}"),
            format!("{:.1}x", ti / td),
        ]);
    }
    table.print();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("dampi_matmul_50_interleavings", |b| {
        b.iter(|| dampi_time(50));
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
