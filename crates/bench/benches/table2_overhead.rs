//! **Table II — DAMPI overhead: medium-large benchmarks at 1K procs.**
//!
//! For every benchmark (ParMETIS, six SpecMPI2007 skeletons, eight NAS
//! skeletons), runs the program natively and under the full DAMPI stack at
//! 1024 processes and reports the slowdown, the number of wildcard
//! receives analyzed (R\*), and the communicator/request leak findings.
//!
//! Expected shape: slowdowns mostly 1.0–1.3x; 104.milc worst by far (the
//! paper's 15x — its 51K wildcard receives make `FindPotentialMatches`
//! scan a large epoch log for every message), NAS LU next (~2.2x: many
//! small pipeline messages each paying the piggyback); C-leak = Yes for
//! ParMETIS, 104.milc, 113.GemsFDTD, 137.lu, BT, FT.

use criterion::{criterion_group, Criterion};
use dampi_bench::table2::{measure, run_table2};

fn np() -> usize {
    std::env::var("DAMPI_TABLE2_NP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if std::env::var("DAMPI_BENCH_FAST").is_ok() {
            64
        } else {
            1024
        })
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("overhead_ep_np64", |b| {
        let prog = dampi_workloads::nas::Ep::nominal();
        b.iter(|| measure(64, &prog));
    });
    g.bench_function("overhead_milc_np64", |b| {
        let prog = dampi_workloads::spec::Milc::nominal();
        b.iter(|| measure(64, &prog));
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    let (table, rows) = run_table2(np());
    table.print();
    let milc = rows
        .iter()
        .find(|r| r.program.contains("milc"))
        .expect("milc row");
    let worst = rows.iter().map(|r| r.slowdown).fold(0.0f64, f64::max);
    println!(
        "worst slowdown: 104.milc at {:.2}x (paper: 15x){}",
        milc.slowdown,
        if (milc.slowdown - worst).abs() < 1e-9 {
            " — worst overall, as in the paper"
        } else {
            ""
        }
    );
    benches();
    Criterion::default().configure_from_args().final_summary();
}
