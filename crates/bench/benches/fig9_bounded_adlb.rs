//! **Fig. 9 — ADLB with bounded mixing applied.**
//!
//! Number of interleavings DAMPI explores for the ADLB work-sharing
//! library at 4–32 processes under mixing bounds k ∈ {0, 1, 2}. ADLB's
//! server loops are so non-deterministic that unbounded coverage is
//! impractical even at a dozen processes (the paper could not verify it
//! under ISP at all); bounded mixing keeps the counts tractable and
//! ordered by k.

use criterion::{criterion_group, Criterion};
use dampi_bench::Table;
use dampi_core::{DampiConfig, DampiVerifier, MixingBound};
use dampi_mpi::SimConfig;
use dampi_workloads::adlb::{Adlb, AdlbParams};

const CAP: u64 = 8_000;

fn program() -> Adlb {
    Adlb::new(AdlbParams {
        nservers: 1,
        seed_items: 3,
        spawn_depth: 1,
        spawn_width: 1,
        work_cost: 1e-5,
    })
}

fn interleavings(np: usize, k: u32, cap: u64) -> (u64, bool) {
    let v = DampiVerifier::with_config(
        SimConfig::new(np),
        DampiConfig::default()
            .with_bound(MixingBound::K(k))
            .with_max_interleavings(cap),
    );
    let report = v.verify(&program());
    assert!(report.errors.is_empty(), "ADLB must verify clean: {report}");
    (report.interleavings, report.budget_exhausted)
}

fn print_figure() {
    let (nps, cap): (&[usize], u64) = if std::env::var("DAMPI_BENCH_FAST").is_ok() {
        (&[4, 8], 2_000)
    } else {
        (&[4, 8, 12, 16, 24, 32], CAP)
    };
    let mut table = Table::new(
        "Fig. 9: ADLB interleavings explored under bounded mixing",
        &["procs", "k=0", "k=1", "k=2"],
    );
    for &np in nps {
        let mut cells = vec![np.to_string()];
        for k in 0..=2u32 {
            let (n, capped) = interleavings(np, k, cap);
            cells.push(if capped {
                format!(">{n}")
            } else {
                n.to_string()
            });
        }
        table.row(cells);
    }
    table.print();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("adlb_k0_np8", |b| {
        b.iter(|| interleavings(8, 0, 5_000));
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
