//! **Replay-cache benefit — cold campaign vs warm re-verification.**
//!
//! Wall-clock of a store-populating cold campaign against an immediate
//! warm re-run on `symmetric_racers` (the parity anchor) and matmul (a
//! deep frontier). Each executed replay carries a fixed simulated launch
//! latency, as in `parallel_explore` and `shard_overhead`: in a real
//! deployment every replay is an MPI job launch, and the honest question
//! is what fraction of that launch bill incremental re-verification
//! eliminates.
//!
//! Expected shape: the warm run reuses every committed subtree (hit rate
//! 1.0, asserted — a speedup figure for a wrong answer aborts the bench)
//! and its wall-clock collapses to the walk's bookkeeping.
//!
//! Set `DAMPI_BENCH_JSON=<path>` to also write the
//! `BENCH_replay_cache.json` snapshot.

use std::time::Duration;

use criterion::{criterion_group, Criterion};
use dampi_bench::cache::{measure, to_json};
use dampi_bench::Table;

fn replay_latency() -> Duration {
    if std::env::var("DAMPI_BENCH_FAST").is_ok() {
        Duration::from_millis(4)
    } else {
        Duration::from_millis(20)
    }
}

fn print_figure() {
    let latency = replay_latency();
    let mut table = Table::new(
        "Replay cache: cold campaign vs warm re-verification",
        &[
            "workload",
            "interleavings",
            "cold (s)",
            "warm (s)",
            "hit rate",
            "speedup",
        ],
    );
    let mut points = Vec::new();
    for workload in ["symmetric_racers", "matmul"] {
        let p = measure(workload, latency);
        table.row(vec![
            p.workload.clone(),
            p.interleavings.to_string(),
            format!("{:.4}", p.cold_wall_s),
            format!("{:.4}", p.warm_wall_s),
            format!("{:.2}", p.warm_hit_rate),
            format!("{:.1}x", p.cold_wall_s / p.warm_wall_s.max(1e-9)),
        ]);
        points.push(p);
    }
    table.print();
    if let Ok(path) = std::env::var("DAMPI_BENCH_JSON") {
        std::fs::write(&path, to_json(latency, &points)).expect("write snapshot");
        eprintln!("wrote {path}");
    }
}

fn bench(c: &mut Criterion) {
    let latency = replay_latency();
    let mut g = c.benchmark_group("replay_cache");
    g.sample_size(10);
    g.bench_function("racers_cold_then_warm", |b| {
        b.iter(|| measure("symmetric_racers", latency));
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
