//! Micro-benchmarks of DAMPI's hot primitives: clock operations, stamp
//! codec, and the message-matching engine.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dampi_clocks::{ClockStamp, LamportClock, LogicalClock, VectorClock};
use dampi_core::pb;
use dampi_mpi::envelope::Envelope;
use dampi_mpi::matching::{MatchEngine, MatchPolicy};
use dampi_mpi::{ANY_SOURCE, ANY_TAG};

fn clocks(c: &mut Criterion) {
    let mut g = c.benchmark_group("clocks");
    g.bench_function("lamport_tick_merge", |b| {
        let mut clk = LamportClock::new(0, 1024);
        let stamp = ClockStamp::Lamport(123);
        b.iter(|| {
            clk.tick();
            clk.merge(&stamp);
            clk.scalar()
        });
    });
    g.bench_function("vector_tick_merge_1024", |b| {
        let mut clk = VectorClock::new(0, 1024);
        let mut other = VectorClock::new(1, 1024);
        other.tick();
        let stamp = other.stamp();
        b.iter(|| {
            clk.tick();
            clk.merge(&stamp);
            clk.scalar()
        });
    });
    g.bench_function("vector_compare_1024", |b| {
        let a = ClockStamp::Vector((0..1024).collect());
        let bb = ClockStamp::Vector((0..1024).rev().collect());
        b.iter(|| VectorClock::compare(&a, &bb));
    });
    g.finish();
}

fn codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("pb_codec");
    g.bench_function("encode_lamport", |b| {
        let s = ClockStamp::Lamport(42);
        b.iter(|| pb::encode_stamp(&s));
    });
    g.bench_function("encode_vector_1024", |b| {
        let s = ClockStamp::Vector(vec![7; 1024]);
        b.iter(|| pb::encode_stamp(&s));
    });
    g.bench_function("pack_unpack_1k_payload", |b| {
        let s = ClockStamp::Lamport(42);
        let payload = Bytes::from(vec![0u8; 1024]);
        b.iter(|| {
            let packed = pb::pack(&s, &payload);
            pb::unpack(&packed)
        });
    });
    g.finish();
}

fn matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    let env = |src: usize| Envelope {
        src,
        dst: 0,
        tag: 1,
        payload: Bytes::from_static(b"x"),
        arrival_seq: 0,
        send_vt: 0.0,
        send_req: None,
    };
    g.bench_function("deliver_match_posted", |b| {
        b.iter_batched(
            || {
                let mut m = MatchEngine::new(64);
                m.post(0, 1, 5, 1, MatchPolicy::ArrivalOrder);
                m
            },
            |mut m| m.deliver(env(5)),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("wildcard_pick_among_32_sources", |b| {
        b.iter_batched(
            || {
                let mut m = MatchEngine::new(64);
                for s in 1..33 {
                    m.deliver(env(s));
                }
                m
            },
            |mut m| m.post(0, 1, ANY_SOURCE, ANY_TAG, MatchPolicy::LowestRank),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, clocks, codec, matching);
criterion_main!(benches);
