//! **Static pruning — replay count and wall-clock with/without the plan.**
//!
//! Plain vs. `--prune-static` campaigns on `symmetric_racers`, matmul,
//! and ADLB (np 16, bounded k=1). Both arms grow from the *same* traced
//! free run (task-pool frontiers differ run to run), so the replay-count
//! delta is exactly what the `dampi-analysis` plan removed.
//!
//! Expected shape: racers halves deterministically (4 → 2, orbits
//! `[0,2]` and `[1,3]` on every run); content-mode matmul is a pinned
//! **no-op** (162 → 162, zero orbits — send signatures digest payload
//! *content*, and every slave returns task-specific rows, so no two
//! slaves are interchangeable; grouping them by length alone is exactly
//! the unsoundness the fig3 regression test guards against); ack-mode
//! matmul (`matmul_ack`) is the payload-oblivious pass's headline row —
//! slaves verify locally and ack with empty payloads, so the whole slave
//! pool merges into one orbit and the campaign collapses 6× (90 → 15 —
//! static round-robin dealing makes the trace schedule-invariant, so
//! the row is deterministic);
//! ADLB at np 16 reduces well beyond the exact pass's ~5–6×, because
//! one-task workers with distinct payloads now merge too. On every point
//! the error set is asserted byte-identical — a wrong answer aborts the
//! bench.
//!
//! Set `DAMPI_BENCH_JSON=<path>` to also write the
//! `BENCH_prune_static.json` snapshot. `DAMPI_BENCH_FAST=1` skips the
//! Criterion timing loop (CI smoke runs the figure + assertions only).

use criterion::{criterion_group, Criterion};
use dampi_bench::prune::{measure, to_json};
use dampi_bench::Table;

fn print_figure() {
    let mut table = Table::new(
        "Static pruning: replays and wall-clock, plain vs. --prune-static",
        &[
            "workload",
            "plain il",
            "pruned il",
            "dropped",
            "det wc",
            "+refined",
            "orbits",
            "obliv rx",
            "plain (s)",
            "pruned (s)",
        ],
    );
    let mut points = Vec::new();
    for workload in ["symmetric_racers", "matmul", "matmul_ack", "adlb"] {
        let p = measure(workload);
        table.row(vec![
            p.workload.clone(),
            p.base_interleavings.to_string(),
            p.pruned_interleavings.to_string(),
            p.alternates_pruned.to_string(),
            p.wildcards_deterministic.to_string(),
            format!(
                "{}/{}",
                p.refined_alternates_pruned, p.refined_wildcards_deterministic
            ),
            p.orbits.to_string(),
            p.oblivious_receives.to_string(),
            format!("{:.4}", p.base_wall_s),
            format!("{:.4}", p.pruned_wall_s),
        ]);
        points.push(p);
    }
    table.print();
    if let Ok(path) = std::env::var("DAMPI_BENCH_JSON") {
        std::fs::write(&path, to_json(&points)).expect("write snapshot");
        eprintln!("wrote {path}");
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("prune_static");
    g.sample_size(10);
    g.bench_function("racers_plain_vs_pruned", |b| {
        b.iter(|| measure("symmetric_racers"));
    });
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    if std::env::var("DAMPI_BENCH_FAST").is_err() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}
