//! **Observability overhead — metrics/tracing on vs off.**
//!
//! Explores `symmetric_racers` and matmul with the campaign metrics and
//! JSONL trace fully enabled (trace sunk to `io::sink()`) and compares
//! against the bare scheduler. The acceptance bar from the design: the
//! metrics-*off* path is the default and must be untouched; the
//! metrics-*on* path should stay within a few percent on these
//! microsecond-replay workloads (the adversarial case — real campaigns
//! amortize the counters over process launches).
//!
//! `DAMPI_BENCH_FAST=1` shrinks the repetition count for CI smoke runs.

use criterion::{criterion_group, Criterion};
use dampi_bench::overhead::{explore_once, measure};
use dampi_bench::Table;

fn reps() -> u32 {
    if std::env::var("DAMPI_BENCH_FAST").is_ok() {
        3
    } else {
        20
    }
}

fn print_figure() {
    let reps = reps();
    let mut table = Table::new(
        "Observability overhead: mean exploration wall-clock, metrics+trace on vs off",
        &[
            "workload",
            "jobs",
            "interleavings",
            "off (ms)",
            "on (ms)",
            "overhead",
        ],
    );
    for workload in ["symmetric_racers", "matmul"] {
        for jobs in [1usize, 4] {
            let p = measure(workload, jobs, reps);
            table.row(vec![
                p.workload.clone(),
                jobs.to_string(),
                p.interleavings.to_string(),
                format!("{:.3}", p.off_s * 1e3),
                format!("{:.3}", p.on_s * 1e3),
                format!("{:+.1}%", p.overhead_pct()),
            ]);
        }
    }
    table.print();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_overhead");
    g.sample_size(10);
    for (name, instrumented) in [("racers_metrics_off", false), ("racers_metrics_on", true)] {
        g.bench_function(name, |b| {
            b.iter(|| explore_once("symmetric_racers", 1, instrumented));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);

fn main() {
    print_figure();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
