//! Seeded generator of random MPI programs.
//!
//! The generator emits a program as a list of **rounds** — the
//! intermediate representation the shrinker minimises — and lowers rounds
//! to a flat [`GenSpec`] event order. Deadlock freedom is by construction
//! (DESIGN.md §15.2):
//!
//! * every point-to-point round lists its sends *before* its receives in
//!   the global order, with exactly as many compatible sends as receives;
//! * a `(receiver, tag, comm)` *stream* is either **multi-source with
//!   all-wildcard receives** (every message compatible with every
//!   receive) or **single-source** (wildcard and named receives may
//!   interleave — the shape that exposed the `SeparateMessage` piggyback
//!   mispairing — and again every message is compatible with every
//!   receive, since named receives all name the one source);
//! * collectives and communicator operations occupy the same global
//!   position on every rank.
//!
//! Under those rules an inductive counting argument shows every blocking
//! point eventually completes, so a generated program with
//! [`BugLabel::Clean`] must verify clean in every mode — any reported
//! error is a tool bug. Injected bug classes break exactly one rule each
//! and carry a known-answer label the oracle checks.

use dampi_mpi::Tag;
use dampi_workloads::generated::{BugLabel, CollectiveKind, GenOp, GenSpec, RecvVia, SrcSpec};
use std::collections::HashMap;

use crate::rng::SplitMix64;

/// Poison payload carried by the sender a [`BugLabel::Race`] round
/// asserts against.
pub const POISON: u64 = 0xDEAD;

/// Tunables of the generator.
#[derive(Debug, Clone)]
pub struct GenParams {
    /// World size.
    pub nprocs: usize,
    /// Number of rounds to generate.
    pub rounds: usize,
    /// Percent chance a new stream is wildcard-receiving.
    pub wildcard_pct: u32,
    /// Percent chance a round is a collective instead of point-to-point.
    pub collective_pct: u32,
    /// Percent chance the program dups/splits an extra communicator and
    /// routes some traffic over it.
    pub comm_pct: u32,
    /// Maximum messages (and receives) per point-to-point round.
    pub max_fanin: usize,
    /// Number of distinct tags drawn from (small on purpose: tag reuse
    /// across rounds is what interleaves streams).
    pub tag_pool: usize,
    /// Injected bug class (`BugLabel::Clean` injects nothing).
    pub bug: BugLabel,
}

impl Default for GenParams {
    fn default() -> Self {
        Self {
            nprocs: 4,
            rounds: 5,
            wildcard_pct: 70,
            collective_pct: 20,
            comm_pct: 30,
            max_fanin: 3,
            tag_pool: 3,
            bug: BugLabel::Clean,
        }
    }
}

impl GenParams {
    /// The per-seed parameter schedule the corpus uses: world size 3–5,
    /// bug class cycling through clean/race/deadlock/mismatch/leak with
    /// clean over-represented (clean programs are the strongest oracle —
    /// *any* report is a tool bug).
    #[must_use]
    pub fn for_seed(seed: u64) -> Self {
        let bug = match seed % 8 {
            3 | 4 => BugLabel::Race,
            5 => BugLabel::Deadlock,
            6 => BugLabel::Mismatch,
            7 => BugLabel::Leak,
            _ => BugLabel::Clean,
        };
        Self {
            nprocs: 3 + usize::try_from(seed % 3).expect("small"),
            bug,
            ..Self::default()
        }
    }
}

/// One round of the generated program (the shrinker's unit of deletion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Round {
    /// `senders` each send one message to `recv` on `(tag, comm)`;
    /// `recv` posts one receive per message.
    P2p {
        /// Receiving rank.
        recv: usize,
        /// Message tag.
        tag: Tag,
        /// Communicator slot.
        comm: usize,
        /// One entry per message: the sending rank.
        senders: Vec<usize>,
        /// Per-receive wildcardness (all true for multi-source streams).
        wildcards: Vec<bool>,
        /// How the receives are issued.
        via: RecvVia,
        /// Race injection: index into `senders` whose payload is
        /// [`POISON`]; the *first* receive asserts against it.
        poison_idx: Option<usize>,
        /// Deadlock injection: the last send is dropped at lowering.
        drop_last_send: bool,
    },
    /// All ranks synchronise.
    Collective {
        /// Collective flavour.
        kind: CollectiveKind,
        /// Root rank.
        root: usize,
        /// Communicator slot.
        comm: usize,
        /// Mismatch injection: this rank calls `barrier` instead.
        mismatch: Option<usize>,
    },
    /// Bind a duplicate of WORLD to a slot.
    CommDup {
        /// Slot bound.
        id: usize,
    },
    /// Bind a full-group split of WORLD to a slot.
    CommSplit {
        /// Slot bound.
        id: usize,
    },
    /// Free the communicator in a slot.
    CommFree {
        /// Slot freed.
        id: usize,
    },
    /// Leak injection: `rank` posts a receive nothing completes.
    Leak {
        /// Leaking rank.
        rank: usize,
        /// Tag nothing sends.
        tag: Tag,
        /// Communicator slot.
        comm: usize,
    },
}

/// Shape a `(receiver, tag, comm)` stream committed to at first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamShape {
    /// Any senders, every receive wildcard.
    MultiWildcard,
    /// All messages from this rank; receives mix wildcard and named.
    SingleSource(usize),
}

/// Generate the round list for `seed` under `params`.
///
/// # Panics
/// When `params` is degenerate (fewer than 2 ranks, zero rounds).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn generate_rounds(seed: u64, params: &GenParams) -> Vec<Round> {
    assert!(params.nprocs >= 2, "need at least 2 ranks");
    assert!(params.rounds >= 1, "need at least 1 round");
    let mut rng = SplitMix64::new(seed);
    let mut rounds = Vec::new();
    let mut shapes: HashMap<(usize, Tag, usize), StreamShape> = HashMap::new();

    // Optionally set up one extra communicator for part of the traffic.
    let extra_comm = if rng.chance(params.comm_pct) {
        let id = 1;
        rounds.push(if rng.chance(50) {
            Round::CommDup { id }
        } else {
            Round::CommSplit { id }
        });
        Some(id)
    } else {
        None
    };

    let mut p2p_at: Vec<usize> = Vec::new();
    let mut collective_at: Vec<usize> = Vec::new();
    for _ in 0..params.rounds {
        if rng.chance(params.collective_pct) {
            let kind = match rng.below(4) {
                0 => CollectiveKind::Barrier,
                1 => CollectiveKind::Bcast,
                2 => CollectiveKind::Allreduce,
                _ => CollectiveKind::Gather,
            };
            collective_at.push(rounds.len());
            rounds.push(Round::Collective {
                kind,
                root: rng.index(params.nprocs),
                comm: 0,
                mismatch: None,
            });
            continue;
        }
        let recv = rng.index(params.nprocs);
        let comm = match extra_comm {
            Some(id) if rng.chance(40) => id,
            _ => 0,
        };
        let tag = 7 + i32::try_from(rng.below(params.tag_pool as u64)).expect("small tag");
        let n = 1 + rng.index(params.max_fanin);
        let other = |rng: &mut SplitMix64| {
            let mut s = rng.index(params.nprocs);
            if s == recv {
                s = (s + 1) % params.nprocs;
            }
            s
        };
        let shape = *shapes.entry((recv, tag, comm)).or_insert_with(|| {
            if rng.chance(params.wildcard_pct) {
                StreamShape::MultiWildcard
            } else {
                StreamShape::SingleSource(other(&mut rng))
            }
        });
        let (senders, wildcards) = match shape {
            StreamShape::MultiWildcard => (
                (0..n).map(|_| other(&mut rng)).collect::<Vec<_>>(),
                vec![true; n],
            ),
            StreamShape::SingleSource(s) => (
                vec![s; n],
                (0..n).map(|_| rng.chance(params.wildcard_pct)).collect(),
            ),
        };
        let via = match rng.below(3) {
            0 => RecvVia::Blocking,
            1 => RecvVia::Irecv,
            _ => RecvVia::ProbeRecv,
        };
        p2p_at.push(rounds.len());
        rounds.push(Round::P2p {
            recv,
            tag,
            comm,
            senders,
            wildcards,
            via,
            poison_idx: None,
            drop_last_send: false,
        });
    }

    // Leave the extra communicator freed unless we are injecting a leak.
    if let Some(id) = extra_comm {
        if params.bug != BugLabel::Leak {
            rounds.push(Round::CommFree { id });
        }
    }

    inject_bug(&mut rng, &mut rounds, &p2p_at, &collective_at, params);
    rounds
}

/// Apply the parameterised bug class to an otherwise-clean round list.
fn inject_bug(
    rng: &mut SplitMix64,
    rounds: &mut Vec<Round>,
    p2p_at: &[usize],
    collective_at: &[usize],
    params: &GenParams,
) {
    match params.bug {
        BugLabel::Clean => {}
        BugLabel::Deadlock => {
            // Drop one send: the stream's counting invariant breaks and
            // some receive starves on *every* schedule.
            if let Some(&i) = p2p_at.last() {
                if let Round::P2p { drop_last_send, .. } = &mut rounds[i] {
                    *drop_last_send = true;
                }
            } else {
                // All-collective program: manufacture a starved receive.
                rounds.push(Round::P2p {
                    recv: 0,
                    tag: 99,
                    comm: 0,
                    senders: vec![1],
                    wildcards: vec![true],
                    via: RecvVia::Blocking,
                    poison_idx: None,
                    drop_last_send: true,
                });
            }
        }
        BugLabel::Mismatch => {
            // One rank calls barrier where the rest run a bcast.
            let root = rng.index(params.nprocs);
            let mismatch = Some((root + 1) % params.nprocs);
            if let Some(&i) = collective_at.first() {
                rounds[i] = Round::Collective {
                    kind: CollectiveKind::Bcast,
                    root,
                    comm: 0,
                    mismatch,
                };
            } else {
                rounds.push(Round::Collective {
                    kind: CollectiveKind::Bcast,
                    root,
                    comm: 0,
                    mismatch,
                });
            }
        }
        BugLabel::Leak => {
            // An unfreed communicator (handled at generation: the free is
            // skipped) plus an abandoned request nothing ever sends to.
            if !rounds
                .iter()
                .any(|r| matches!(r, Round::CommDup { .. } | Round::CommSplit { .. }))
            {
                rounds.insert(0, Round::CommDup { id: 1 });
            }
            rounds.push(Round::Leak {
                rank: rng.index(params.nprocs),
                tag: 98,
                comm: 0,
            });
        }
        // Conformance bugs are injected by the protocol-template
        // generator (`crate::protocol`), which owns its own lowering; the
        // round-based generator never produces them.
        BugLabel::Conformance => {}
        BugLabel::Race => {
            // A wildcard receive asserts against a poison only one of two
            // concurrent senders carries: an error on some schedules only
            // — the verifier must *explore* to find it (paper Fig. 3).
            let recv = rng.index(params.nprocs);
            let a = (recv + 1) % params.nprocs;
            let b = (recv + 2) % params.nprocs;
            let (a, b) = if a == b {
                (a, (a + 1) % params.nprocs)
            } else {
                (a, b)
            };
            rounds.push(Round::P2p {
                recv,
                tag: 97,
                comm: 0,
                senders: vec![a, b],
                wildcards: vec![true, true],
                via: RecvVia::Blocking,
                poison_idx: Some(1),
                drop_last_send: false,
            });
        }
    }
}

/// Lower a round list to the flat event order a [`GenSpec`] carries.
#[must_use]
pub fn lower(name: &str, seed: u64, params: &GenParams, rounds: &[Round]) -> GenSpec {
    let mut ops = Vec::new();
    // Per-rank count of irecv slots already posted, for Wait indices.
    let mut posted = vec![0usize; params.nprocs];
    let mut value = 100u64;
    for round in rounds {
        match round {
            Round::P2p {
                recv,
                tag,
                comm,
                senders,
                wildcards,
                via,
                poison_idx,
                drop_last_send,
            } => {
                let n = senders.len();
                let sent = if *drop_last_send { n - 1 } else { n };
                for (i, &from) in senders.iter().take(sent).enumerate() {
                    let v = if *poison_idx == Some(i) {
                        POISON
                    } else {
                        value
                    };
                    value += 1;
                    ops.push(GenOp::Send {
                        from,
                        to: *recv,
                        tag: *tag,
                        comm: *comm,
                        value: v,
                    });
                }
                let mut waits = Vec::new();
                for (i, &wild) in wildcards.iter().enumerate() {
                    let src = if wild {
                        SrcSpec::Wildcard
                    } else {
                        SrcSpec::Named(senders[i])
                    };
                    // Only the first receive asserts: later receives must
                    // tolerate the poison so the bug is schedule-dependent.
                    let assert_ne = if poison_idx.is_some() && i == 0 {
                        Some(POISON)
                    } else {
                        None
                    };
                    ops.push(GenOp::Recv {
                        rank: *recv,
                        src,
                        tag: *tag,
                        comm: *comm,
                        via: *via,
                        assert_ne,
                    });
                    if *via == RecvVia::Irecv {
                        waits.push(GenOp::Wait {
                            rank: *recv,
                            slot: posted[*recv],
                        });
                        posted[*recv] += 1;
                    }
                }
                ops.extend(waits);
            }
            Round::Collective {
                kind,
                root,
                comm,
                mismatch,
            } => ops.push(GenOp::Collective {
                kind: *kind,
                root: *root,
                comm: *comm,
                mismatch_rank: *mismatch,
            }),
            Round::CommDup { id } => ops.push(GenOp::CommDup { id: *id }),
            Round::CommSplit { id } => ops.push(GenOp::CommSplit { id: *id }),
            Round::CommFree { id } => ops.push(GenOp::CommFree { id: *id }),
            Round::Leak { rank, tag, comm } => ops.push(GenOp::LeakRequest {
                rank: *rank,
                tag: *tag,
                comm: *comm,
            }),
        }
    }
    GenSpec {
        name: name.to_owned(),
        nprocs: params.nprocs,
        seed,
        bug: params.bug,
        ops,
    }
}

/// Generate the program for `seed` under `params`.
#[must_use]
pub fn generate(seed: u64, params: &GenParams) -> GenSpec {
    let rounds = generate_rounds(seed, params);
    lower(&format!("fuzz_{seed}"), seed, params, &rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::{run_native, MatchPolicy, SimConfig};
    use dampi_workloads::generated::GenProgram;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..32 {
            let p = GenParams::for_seed(seed);
            assert_eq!(generate(seed, &p), generate(seed, &p), "seed {seed}");
        }
    }

    #[test]
    fn clean_programs_run_clean_natively() {
        for seed in (0..64).filter(|s| GenParams::for_seed(*s).bug == BugLabel::Clean) {
            let spec = generate(seed, &GenParams::for_seed(seed));
            let outcome = run_native(
                &SimConfig::new(spec.nprocs).with_policy(MatchPolicy::LowestRank),
                &GenProgram::new(spec.clone()),
            );
            assert!(
                outcome.program_bugs().is_empty(),
                "seed {seed} not clean: {:?}",
                outcome.program_bugs()
            );
            assert!(outcome.leaks.is_clean(), "seed {seed} leaks");
        }
    }

    #[test]
    fn deadlock_seeds_deadlock_natively() {
        let mut checked = 0;
        for seed in (0..64).filter(|s| GenParams::for_seed(*s).bug == BugLabel::Deadlock) {
            let spec = generate(seed, &GenParams::for_seed(seed));
            let outcome = run_native(
                &SimConfig::new(spec.nprocs).with_policy(MatchPolicy::LowestRank),
                &GenProgram::new(spec.clone()),
            );
            assert!(
                outcome
                    .program_bugs()
                    .iter()
                    .any(|b| matches!(b.error, dampi_mpi::MpiError::Deadlock { .. })),
                "seed {seed}: expected deadlock, got {:?}",
                outcome.program_bugs()
            );
            checked += 1;
        }
        assert!(checked > 0);
    }
}
