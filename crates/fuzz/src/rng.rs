//! Deterministic PRNG for the generator.
//!
//! SplitMix64: tiny state, full 64-bit period over the stream of a given
//! seed, and — crucially for fuzzing — a pure function of that seed. Two
//! runs with the same seed produce the same program byte-for-byte, which
//! is what lets the corpus verdicts be committed and diffed in CI.

/// SplitMix64 generator state.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    /// When `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Modulo bias is irrelevant at fuzzing ranges (n ≪ 2^32).
        self.next_u64() % n
    }

    /// Uniform `usize` in `0..n`.
    ///
    /// # Panics
    /// When `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        usize::try_from(self.below(n as u64)).expect("index fits usize")
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u32) -> bool {
        self.below(100) < u64::from(pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..256 {
            assert!(r.below(13) < 13);
        }
        assert!(r.chance(100));
        assert!(!r.chance(0));
    }
}
