//! Protocol-template program generation (DESIGN.md §16.5).
//!
//! Where [`crate::gen`] draws random programs and asks the *replay*
//! oracle to agree with a known-answer bug label, this module draws
//! random **session protocols** and lowers each one to a program that
//! conforms to it by construction — then optionally perturbs the program
//! with one seeded conformance violation. The pair `(spec text, program)`
//! is a known-answer test for the static conformance checker:
//!
//! * no injection → `analyze --protocol` must report every rank
//!   conformant (any L006–L008 is a checker false positive);
//! * an injected violation → exactly the matching lint must fire
//!   ([`Injection::Order`] → L006, [`Injection::Peer`] → L007,
//!   [`Injection::Short`] → L008) and nothing else.
//!
//! Every generated program is MPI-clean regardless of injection — the
//! violations reorder, re-route, or drop *protocol-relevant* traffic
//! without breaking the send/receive counting invariant — so they also
//! carry [`BugLabel::Conformance`] through the replay oracle as
//! must-verify-clean programs.

use dampi_analysis::ProtocolSpec;
use dampi_core::{DampiConfig, DampiVerifier};
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::generated::{BugLabel, GenOp, GenProgram, GenSpec, RecvVia, SrcSpec};
use std::fmt::Write as _;

use crate::rng::SplitMix64;

/// Which conformance violation a template injects into its program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Program conforms to the spec: the checker must stay silent.
    None,
    /// The coordinator issues its first two direct sends in reverse
    /// spec order (distinct tags, so no protocol edge matches) → L006.
    Order,
    /// The coordinator swaps the recipients of its first two direct
    /// sends (same tag, so the shape matches but the peer does not)
    /// → L007.
    Peer,
    /// The final funnel message and its matching receive are dropped:
    /// the coordinator finalizes with a mandatory receive outstanding
    /// → L008.
    Short,
}

impl Injection {
    /// The lint the checker must report, `None` for a conforming pair.
    #[must_use]
    pub fn expected_lint(self) -> Option<&'static str> {
        match self {
            Injection::None => None,
            Injection::Order => Some("L006"),
            Injection::Peer => Some("L007"),
            Injection::Short => Some("L008"),
        }
    }

    /// The corpus schedule: clean over-represented (a silent checker on
    /// a conforming pair is the strongest oracle), the three violation
    /// classes cycling through the remaining seeds.
    #[must_use]
    pub fn for_seed(seed: u64) -> Self {
        match seed % 6 {
            1 => Injection::Order,
            3 => Injection::Peer,
            5 => Injection::Short,
            _ => Injection::None,
        }
    }
}

/// A generated protocol template: the spec text, the program lowered
/// from it, and the violation (if any) seeded into the program.
#[derive(Debug, Clone)]
pub struct ProtocolTemplate {
    /// Session-protocol source in the `.protocol` language.
    pub spec_text: String,
    /// The program, conforming to `spec_text` unless `injection` says
    /// otherwise. Always MPI-clean.
    pub program: GenSpec,
    /// The seeded violation class.
    pub injection: Injection,
}

/// Generate the protocol template for `seed`.
///
/// The template family is a coordinator pattern: rank 0 greets a prefix
/// of the workers with direct sends (distinct dests; distinct tags except
/// under [`Injection::Peer`], which needs a shared tag to hit the
/// wrong-peer — rather than wrong-shape — path), then collects a funnel
/// of wildcard receives fed by seeded worker picks. Sends precede their
/// receives in the global order, so the standard counting argument makes
/// every template deadlock-free.
#[must_use]
pub fn generate_template(seed: u64) -> ProtocolTemplate {
    let injection = Injection::for_seed(seed);
    // Distinct RNG domain from `gen::generate` so protocol corpora never
    // correlate with the round-based corpus at equal seeds.
    let mut rng = SplitMix64::new(seed ^ 0x5e55_1031_7e4d_a7e5);
    let nprocs = 3 + rng.index(2); // 3..=4: at least two workers
    let nworkers = nprocs - 1;
    let ndirect = 2 + rng.index(nworkers - 1); // 2..=nworkers
    let funnel = 2 + rng.index(2); // 2..=3 funnel messages
    let shared_tag = injection == Injection::Peer;

    let mut spec = String::new();
    let _ = writeln!(spec, "protocol fuzz_{seed}");
    let _ = writeln!(spec, "role coord = 0");
    let _ = writeln!(spec, "role worker = 1..np");
    for w in 1..=ndirect {
        let _ = writeln!(spec, "role w{w} = {w}");
    }
    for k in 0..ndirect {
        let tag = if shared_tag { 30 } else { 30 + k };
        let _ = writeln!(spec, "tag T{k} = {tag}");
    }
    let _ = writeln!(spec, "tag R = 40");
    for k in 0..ndirect {
        let _ = writeln!(spec, "msg coord -> w{} : T{k}", k + 1);
    }
    let _ = writeln!(spec, "repeat {funnel} {{ msg any worker -> coord : R }}");

    // Lower to the conforming op order: direct sends (each immediately
    // answered by its named receive), then the funnel's sends, then the
    // coordinator's wildcard receives.
    let mut directs = Vec::new();
    for k in 0..ndirect {
        let tag = if shared_tag { 30 } else { 30 + k as i32 };
        directs.push((k + 1, tag)); // (dest, tag)
    }
    match injection {
        Injection::Order | Injection::Peer => directs.swap(0, 1),
        Injection::None | Injection::Short => {}
    }
    let mut ops = Vec::new();
    let mut value = 500u64;
    for &(to, tag) in &directs {
        ops.push(GenOp::Send {
            from: 0,
            to,
            tag,
            comm: 0,
            value,
        });
        value += 1;
    }
    // Receives keyed by (source-fixed, tag): spec order is irrelevant on
    // the worker side, delivery is per-worker FIFO either way.
    for &(to, tag) in &directs {
        ops.push(GenOp::Recv {
            rank: to,
            src: SrcSpec::Named(0),
            tag,
            comm: 0,
            via: RecvVia::Blocking,
            assert_ne: None,
        });
    }
    let kept = if injection == Injection::Short {
        funnel - 1
    } else {
        funnel
    };
    for _ in 0..kept {
        let from = 1 + rng.index(nworkers);
        ops.push(GenOp::Send {
            from,
            to: 0,
            tag: 40,
            comm: 0,
            value,
        });
        value += 1;
    }
    for _ in 0..kept {
        ops.push(GenOp::Recv {
            rank: 0,
            src: SrcSpec::Wildcard,
            tag: 40,
            comm: 0,
            via: RecvVia::Blocking,
            assert_ne: None,
        });
    }
    let bug = if injection == Injection::None {
        BugLabel::Clean
    } else {
        BugLabel::Conformance
    };
    ProtocolTemplate {
        spec_text: spec,
        program: GenSpec {
            name: format!("fuzz_proto_{seed}"),
            nprocs,
            seed,
            bug,
            ops,
        },
        injection,
    }
}

/// Run the conformance checker on a template's traced free run and
/// compare the outcome with the template's known answer.
///
/// Returns `Ok(lints fired)` when the checker answered exactly as the
/// injection demands, `Err(why)` on a false positive, a miss, or a
/// misclassification.
pub fn check_template(t: &ProtocolTemplate) -> Result<usize, String> {
    let spec = ProtocolSpec::parse(&t.spec_text)
        .map_err(|e| format!("generated spec does not parse: {e}"))?;
    let sim = SimConfig::new(t.program.nprocs).with_policy(MatchPolicy::LowestRank);
    let verifier = DampiVerifier::with_config(sim, DampiConfig::default());
    let report = dampi_analysis::analyze_program_with_protocol(
        &verifier,
        &GenProgram::new(t.program.clone()),
        Some(&spec),
    )?;
    let fired: Vec<&str> = report
        .lints
        .iter()
        .filter(|l| matches!(l.id, "L006" | "L007" | "L008"))
        .map(|l| l.id)
        .collect();
    match t.injection.expected_lint() {
        None => {
            if fired.is_empty() {
                Ok(0)
            } else {
                Err(format!(
                    "false positive: conforming template fired {fired:?}"
                ))
            }
        }
        Some(want) => {
            if fired.iter().all(|id| *id == want) && !fired.is_empty() {
                Ok(fired.len())
            } else {
                Err(format!(
                    "injected {want} violation, checker reported {fired:?}"
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::run_native;

    #[test]
    fn template_generation_is_deterministic() {
        for seed in 0..24 {
            let a = generate_template(seed);
            let b = generate_template(seed);
            assert_eq!(a.spec_text, b.spec_text, "seed {seed}");
            assert_eq!(a.program, b.program, "seed {seed}");
        }
    }

    #[test]
    fn templates_are_mpi_clean_under_every_injection() {
        for seed in 0..24 {
            let t = generate_template(seed);
            let out = run_native(
                &SimConfig::new(t.program.nprocs).with_policy(MatchPolicy::LowestRank),
                &GenProgram::new(t.program.clone()),
            );
            assert!(
                out.program_bugs().is_empty(),
                "seed {seed} ({:?}): {:?}",
                t.injection,
                out.program_bugs()
            );
        }
    }

    #[test]
    fn checker_answers_every_template_correctly() {
        let mut violations = 0;
        for seed in 0..24 {
            let t = generate_template(seed);
            let fired = check_template(&t).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            if t.injection != Injection::None {
                assert!(fired > 0, "seed {seed}");
                violations += 1;
            }
        }
        assert!(violations >= 9, "schedule should seed plenty of violations");
    }
}
