//! Greedy spec minimisation.
//!
//! When the oracle flags a seed, the raw program is usually too big to
//! read. The shrinker deletes whole rounds (and trims senders within
//! point-to-point rounds), re-lowers, and re-runs a caller-supplied
//! predicate after each candidate deletion — keeping the deletion only if
//! the program is still "interesting" (usually: still produces the same
//! `BUG:` verdict). Working at round granularity preserves the
//! generator's deadlock-freedom invariants by construction, so shrinking
//! never turns a tool bug into an injected-looking program bug.
//!
//! The walk is deterministic (left-to-right, restart on success, fixed
//! trim order), so a given seed always shrinks to the same fixture.

use dampi_workloads::generated::GenSpec;

use crate::gen::{lower, GenParams, Round};

/// Minimise `rounds` while `still_interesting` holds on the lowered spec.
///
/// Returns the shrunk round list; lower it with the same `name`, `seed`,
/// and `params` to obtain the committable fixture.
pub fn shrink<F>(
    name: &str,
    seed: u64,
    params: &GenParams,
    rounds: &[Round],
    mut still_interesting: F,
) -> Vec<Round>
where
    F: FnMut(&GenSpec) -> bool,
{
    let mut best: Vec<Round> = rounds.to_vec();
    let keeps = |cand: &[Round], f: &mut F| f(&lower(name, seed, params, cand));

    // Phase 1: delete whole rounds, restarting after every success so
    // later deletions see the smaller program.
    let mut progress = true;
    while progress {
        progress = false;
        for i in 0..best.len() {
            let mut cand = best.clone();
            cand.remove(i);
            if !cand.is_empty() && keeps(&cand, &mut still_interesting) {
                best = cand;
                progress = true;
                break;
            }
        }
    }

    // Phase 2: trim messages off point-to-point rounds, one at a time.
    let mut progress = true;
    while progress {
        progress = false;
        for i in 0..best.len() {
            let fanin = match &best[i] {
                Round::P2p { senders, .. } => senders.len(),
                _ => 0,
            };
            if fanin <= 1 {
                continue;
            }
            let mut cand = best.clone();
            if let Round::P2p {
                senders, wildcards, ..
            } = &mut cand[i]
            {
                senders.pop();
                wildcards.pop();
            }
            if keeps(&cand, &mut still_interesting) {
                best = cand;
                progress = true;
                break;
            }
        }
    }

    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_rounds;

    #[test]
    fn shrinks_to_the_predicate_core() {
        let params = GenParams::for_seed(0);
        let rounds = generate_rounds(0, &params);
        // "Interesting" = still contains at least one wildcard receive.
        let shrunk = shrink("t", 0, &params, &rounds, |spec| spec.wildcard_count() > 0);
        assert!(!shrunk.is_empty());
        let spec = lower("t", 0, &params, &shrunk);
        assert!(spec.wildcard_count() > 0);
        // Minimal: removing any remaining round kills the predicate.
        for i in 0..shrunk.len() {
            let mut cand = shrunk.clone();
            cand.remove(i);
            if !cand.is_empty() {
                let s = lower("t", 0, &params, &cand);
                assert_eq!(s.wildcard_count(), 0, "round {i} was removable");
            }
        }
    }

    #[test]
    fn shrink_is_deterministic() {
        let params = GenParams::for_seed(3);
        let rounds = generate_rounds(3, &params);
        let a = shrink("t", 3, &params, &rounds, |s| s.wildcard_count() > 1);
        let b = shrink("t", 3, &params, &rounds, |s| s.wildcard_count() > 1);
        assert_eq!(a, b);
    }
}
