//! The differential clock-mode oracle.
//!
//! Every generated program is verified under seven configurations: the
//! ISP baseline, DAMPI vector clocks under both piggyback mechanisms,
//! DAMPI Lamport clocks under both mechanisms, and Lamport at `k = 0`
//! and `k = 1` bounded mixing. The oracle only *fails* a seed on
//! relations that are theorems of the implementation; everything else is
//! classified and recorded (DESIGN.md §15.3).
//!
//! **Hard axes (`BUG:` verdicts — a tool defect, fix it):**
//!
//! 1. **Exact-mode error agreement** — ISP and vector-clock DAMPI (under
//!    either piggyback mechanism) perform *exact* causality analysis, so
//!    all three must report the same error set.
//! 2. **Error soundness** — every error any mode reports comes from a
//!    real replayed execution, and the vector search is complete: no
//!    mode may report an error the vector search misses.
//! 3. **Exact-mode match agreement on error-free programs** — when
//!    nothing errors, the exact searches converge on the same total of
//!    discovered matches. (Stamp corruption — e.g. the `SeparateMessage`
//!    mispairing fixed in this tree — breaks exactly this axis.)
//! 4. **Known-answer labels** — injected bug classes must be found by
//!    the exact modes; clean programs must verify clean.
//!
//! **Soft axes (classified, sound, expected):**
//!
//! * `lamport-omission` — the Lamport search discovered fewer matches
//!   than the vector search (paper Fig. 4: tying stamps hide an
//!   alternate).
//! * `lamport-overapprox` — the Lamport search discovered *more*:
//!   scalar stamps cannot separate "concurrent" from "ordered", so
//!   Lamport analysis records alternates exact analysis refutes (the
//!   paper's extra-replay overapproximation; infeasible ones surface as
//!   replay divergences).
//! * `k-omission` — a `k`-bounded search missed an error the unbounded
//!   one finds; the smallest closing `k` is recorded.
//! * `mechanism-variance` — same-clock searches under the two piggyback
//!   mechanisms walked different parts of the space. Piggyback traffic
//!   perturbs virtual time, virtual time perturbs initial-run matching,
//!   and Lamport analysis is schedule-relative — so Lamport-mode parity
//!   is *not* a theorem on arbitrary programs. (It *is* deterministic on
//!   timing-robust fixtures, which the committed mispairing regression
//!   pins exactly.)
//!
//! Verdicts contain only schedule-independent quantities (error
//! signatures, discovered-match totals, interleaving counts) so a verdict
//! file is byte-identical across reruns and machines — which is what the
//! CI gate diffs.

use std::collections::BTreeSet;

use dampi_core::{
    ClockMode, DampiConfig, DampiVerifier, MixingBound, PiggybackMechanism, VerificationReport,
};
use dampi_isp::IspVerifier;
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::generated::{BugLabel, GenProgram, GenSpec};
use serde::{Deserialize, Serialize};

/// Oracle tunables.
#[derive(Debug, Clone)]
pub struct OracleParams {
    /// Interleaving budget per mode; a mode that exhausts it makes the
    /// verdict `budget-capped` (containment is meaningless between
    /// differently-truncated searches).
    pub max_interleavings: u64,
    /// Highest `k` tried when searching for the closing bound of a
    /// `k`-omission.
    pub escalate_k: u32,
}

impl Default for OracleParams {
    fn default() -> Self {
        Self {
            max_interleavings: 2_000,
            escalate_k: 4,
        }
    }
}

/// What one verification mode produced, reduced to its
/// schedule-independent core.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModeOutcome {
    /// Mode name (`isp`, `vec`, `lam`, `lam-packed`, `lam-k0`, …).
    pub mode: String,
    /// Sorted canonical error signatures.
    pub errors: Vec<String>,
    /// Total discovered matches over all epochs.
    pub matches: usize,
    /// Interleavings executed.
    pub interleavings: u64,
    /// True when no resource leaked in the first run.
    pub leaks_clean: bool,
    /// True when the interleaving budget cut the walk short.
    pub capped: bool,
}

impl ModeOutcome {
    fn from_report(mode: &str, r: &VerificationReport) -> Self {
        Self {
            mode: mode.to_owned(),
            errors: r.error_signature().into_iter().collect(),
            matches: r.total_discovered_matches(),
            interleavings: r.interleavings,
            leaks_clean: r.leaks.is_clean(),
            capped: r.budget_exhausted,
        }
    }

    fn error_set(&self) -> BTreeSet<String> {
        self.errors.iter().cloned().collect()
    }
}

/// The oracle's judgement on one seed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// Generator seed.
    pub seed: u64,
    /// Program name.
    pub name: String,
    /// Known-answer bug label.
    pub label: String,
    /// World size.
    pub nprocs: usize,
    /// Number of events in the spec.
    pub ops: usize,
    /// Number of wildcard receives (epochs).
    pub wildcards: usize,
    /// `agree`, `lamport-omission`, `k-omission`,
    /// `lamport-omission+k-omission`, `budget-capped`, or `BUG:<what>`.
    pub verdict: String,
    /// Smallest `k` at which the bounded search matches the unbounded
    /// one, when a `k`-omission was observed and closed within the
    /// escalation budget.
    pub closing_k: Option<u32>,
    /// Per-mode outcomes, in a fixed order.
    pub modes: Vec<ModeOutcome>,
    /// Human-readable elaboration of a `BUG:` verdict.
    pub detail: String,
}

impl Verdict {
    /// True when the verdict signals a tool bug (fails the corpus gate).
    #[must_use]
    pub fn unclassified(&self) -> bool {
        self.verdict.starts_with("BUG:")
    }

    /// One-line JSON (the corpus file format).
    ///
    /// # Panics
    /// Never: the verdict is plain data.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("verdict serialises")
    }
}

fn dampi_report(
    spec: &GenSpec,
    mode: ClockMode,
    bound: MixingBound,
    pb: PiggybackMechanism,
    max: u64,
) -> VerificationReport {
    let sim = SimConfig::new(spec.nprocs)
        .with_policy(MatchPolicy::LowestRank)
        .with_deterministic(true);
    let cfg = DampiConfig::default()
        .with_clock_mode(mode)
        .with_bound(bound)
        .with_piggyback(pb)
        .with_max_interleavings(max);
    DampiVerifier::with_config(sim, cfg).verify(&GenProgram::new(spec.clone()))
}

fn isp_report(spec: &GenSpec, max: u64) -> VerificationReport {
    let sim = SimConfig::new(spec.nprocs)
        .with_policy(MatchPolicy::LowestRank)
        .with_deterministic(true);
    let mut v = IspVerifier::new(sim);
    v.cfg.max_interleavings = Some(max);
    v.verify(&GenProgram::new(spec.clone()))
}

/// Check the known-answer label against the exact (vector/ISP) outcomes.
fn label_violation(label: BugLabel, vec: &ModeOutcome, isp: &ModeOutcome) -> Option<String> {
    let has = |o: &ModeOutcome, what: &str| o.errors.iter().any(|e| e.starts_with(what));
    match label {
        BugLabel::Clean => {
            if !vec.errors.is_empty() {
                Some(format!("clean program reported errors: {:?}", vec.errors))
            } else if !vec.leaks_clean {
                Some("clean program reported leaks".to_owned())
            } else {
                None
            }
        }
        BugLabel::Deadlock => (!has(vec, "deadlock"))
            .then(|| format!("injected deadlock not found: {:?}", vec.errors)),
        BugLabel::Mismatch => (!has(vec, "collective-mismatch"))
            .then(|| format!("injected mismatch not found: {:?}", vec.errors)),
        BugLabel::Leak => vec
            .leaks_clean
            .then(|| "injected leak not reported".to_owned()),
        // A conformance-labelled program is MPI-clean by construction —
        // its defect lives in the companion protocol spec, checked by
        // `protocol::check_template`, not by the replay oracle.
        BugLabel::Conformance => {
            if !vec.errors.is_empty() {
                Some(format!(
                    "conformance-labelled program reported MPI errors: {:?}",
                    vec.errors
                ))
            } else {
                None
            }
        }
        BugLabel::Race => {
            if !has(vec, "assert") {
                Some(format!(
                    "injected race not found by vector clocks: {:?}",
                    vec.errors
                ))
            } else if !has(isp, "assert") {
                Some(format!("injected race not found by ISP: {:?}", isp.errors))
            } else {
                None
            }
        }
    }
}

/// Run the full differential oracle on one spec.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_oracle(spec: &GenSpec, params: &OracleParams) -> Verdict {
    let max = params.max_interleavings;
    let isp = ModeOutcome::from_report("isp", &isp_report(spec, max));
    let vec_sep = ModeOutcome::from_report(
        "vec",
        &dampi_report(
            spec,
            ClockMode::Vector,
            MixingBound::Unbounded,
            PiggybackMechanism::SeparateMessage,
            max,
        ),
    );
    let vec_packed = ModeOutcome::from_report(
        "vec-packed",
        &dampi_report(
            spec,
            ClockMode::Vector,
            MixingBound::Unbounded,
            PiggybackMechanism::PayloadPacking,
            max,
        ),
    );
    let lam_sep = ModeOutcome::from_report(
        "lam",
        &dampi_report(
            spec,
            ClockMode::Lamport,
            MixingBound::Unbounded,
            PiggybackMechanism::SeparateMessage,
            max,
        ),
    );
    let lam_packed = ModeOutcome::from_report(
        "lam-packed",
        &dampi_report(
            spec,
            ClockMode::Lamport,
            MixingBound::Unbounded,
            PiggybackMechanism::PayloadPacking,
            max,
        ),
    );
    let lam_k0 = ModeOutcome::from_report(
        "lam-k0",
        &dampi_report(
            spec,
            ClockMode::Lamport,
            MixingBound::K(0),
            PiggybackMechanism::SeparateMessage,
            max,
        ),
    );
    let lam_k1 = ModeOutcome::from_report(
        "lam-k1",
        &dampi_report(
            spec,
            ClockMode::Lamport,
            MixingBound::K(1),
            PiggybackMechanism::SeparateMessage,
            max,
        ),
    );

    let modes = vec![
        isp.clone(),
        vec_sep.clone(),
        vec_packed.clone(),
        lam_sep.clone(),
        lam_packed.clone(),
        lam_k0.clone(),
        lam_k1.clone(),
    ];
    let mut verdict = Verdict {
        seed: spec.seed,
        name: spec.name.clone(),
        label: spec.bug.name().to_owned(),
        nprocs: spec.nprocs,
        ops: spec.ops.len(),
        wildcards: spec.wildcard_count(),
        verdict: "agree".to_owned(),
        closing_k: None,
        modes,
        detail: String::new(),
    };
    let fail = |v: &mut Verdict, what: &str, detail: String| {
        v.verdict = format!("BUG:{what}");
        v.detail = detail;
    };

    if verdict.modes.iter().any(|m| m.capped) {
        verdict.verdict = "budget-capped".to_owned();
        return verdict;
    }

    // Hard axis 1: the exact searches must agree on the error set —
    // including across piggyback mechanisms, where vector-mode analysis
    // leaves no room for stamp-relative variance in *what is a bug*.
    if isp.error_set() != vec_sep.error_set() || vec_sep.error_set() != vec_packed.error_set() {
        fail(
            &mut verdict,
            "exact-error-divergence",
            format!(
                "isp {:?} vs vec {:?} vs vec-packed {:?}",
                isp.errors, vec_sep.errors, vec_packed.errors
            ),
        );
        return verdict;
    }

    // Hard axis 2: every reported error is a real replayed execution, and
    // the vector search is complete — no mode may out-find it.
    for m in [&lam_sep, &lam_packed, &lam_k0, &lam_k1] {
        if !m.error_set().is_subset(&vec_sep.error_set()) {
            fail(
                &mut verdict,
                "error-not-in-vector",
                format!("{} {:?} vs vector {:?}", m.mode, m.errors, vec_sep.errors),
            );
            return verdict;
        }
    }

    // Hard axis 3: on error-free programs the exact searches converge on
    // the same discovered-match total. (When a run errors, how far each
    // rank got before aborting is timing-dependent, so totals are not
    // comparable.) Stamp corruption breaks exactly this axis.
    let error_free = verdict.modes.iter().all(|m| m.errors.is_empty());
    if error_free && (isp.matches != vec_sep.matches || vec_sep.matches != vec_packed.matches) {
        fail(
            &mut verdict,
            "exact-match-divergence",
            format!(
                "isp {}m vs vec {}m vs vec-packed {}m",
                isp.matches, vec_sep.matches, vec_packed.matches
            ),
        );
        return verdict;
    }

    // Hard axis 4: known-answer labels.
    if let Some(why) = label_violation(spec.bug, &vec_sep, &isp) {
        fail(&mut verdict, "label-violation", why);
        return verdict;
    }

    // Soft axes: classify, don't fail.
    let mut classes: Vec<&str> = Vec::new();
    if error_free && lam_sep.matches < vec_sep.matches {
        classes.push("lamport-omission");
    }
    if error_free && lam_sep.matches > vec_sep.matches {
        classes.push("lamport-overapprox");
    }
    let k_omission =
        lam_k0.error_set() != lam_sep.error_set() || lam_k1.error_set() != lam_sep.error_set();
    if k_omission {
        classes.push("k-omission");
        // Escalate k until the bounded search finds the same errors as
        // the unbounded one; the closing k quantifies the omission.
        if lam_k1.error_set() == lam_sep.error_set() {
            verdict.closing_k = Some(1);
        } else {
            for k in 2..=params.escalate_k {
                let r = dampi_report(
                    spec,
                    ClockMode::Lamport,
                    MixingBound::K(k),
                    PiggybackMechanism::SeparateMessage,
                    max,
                );
                if r.error_signature() == lam_sep.error_set() {
                    verdict.closing_k = Some(k);
                    break;
                }
            }
        }
    }
    if lam_sep.matches != lam_packed.matches
        || lam_sep.interleavings != lam_packed.interleavings
        || lam_sep.errors != lam_packed.errors
    {
        classes.push("mechanism-variance");
    }

    verdict.verdict = if classes.is_empty() {
        "agree".to_owned()
    } else {
        classes.join("+")
    };
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};

    #[test]
    fn oracle_is_deterministic() {
        let spec = generate(1, &GenParams::for_seed(1));
        let p = OracleParams::default();
        let a = run_oracle(&spec, &p);
        let b = run_oracle(&spec, &p);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn mispair_fixture_verdict_is_classified() {
        let spec = dampi_workloads::generated::fixtures::separate_message_mispair();
        let v = run_oracle(&spec, &OracleParams::default());
        assert!(!v.unclassified(), "{}: {}", v.verdict, v.detail);
    }
}
