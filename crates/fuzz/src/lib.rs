//! `dampi-fuzz` — generative MPI workload fuzzing with a differential
//! clock-mode oracle.
//!
//! The fuzzer closes the loop the rest of the workspace leaves open: the
//! committed workloads exercise the verifier on *known* patterns, but the
//! space of wildcard/collective/communicator interleavings is vast and
//! the interesting failures live in shapes nobody wrote by hand (the
//! `SeparateMessage` piggyback mispairing was exactly such a shape).
//! Three pieces (DESIGN.md §15):
//!
//! * [`gen`] — a seeded, fully deterministic generator of random MPI
//!   programs over the `dampi-mpi` op vocabulary, deadlock-free by
//!   construction, with optional injected bug classes carrying
//!   known-answer labels;
//! * [`oracle`] — a differential harness that verifies each program
//!   under ISP, DAMPI vector clocks, and DAMPI Lamport clocks (both
//!   piggyback mechanisms, unbounded and `k`-bounded), asserting the
//!   containment lattice between them and classifying every disagreement
//!   as a sound omission (paper Fig. 4) or a tool bug;
//! * [`shrink()`] — a greedy minimiser that turns a disagreeing seed into
//!   a committable regression fixture;
//! * [`protocol`] — a seeded generator of session-protocol templates and
//!   programs conforming to them (or violating them in one known way),
//!   the known-answer harness for the static conformance checker's
//!   L006–L008 lints.
//!
//! Drive it with `dampi-cli fuzz --seed S --count N`; the committed
//! corpus verdicts live in `corpus/` and are byte-compared in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod oracle;
pub mod protocol;
pub mod rng;
pub mod shrink;

pub use gen::{generate, generate_rounds, lower, GenParams, Round};
pub use oracle::{run_oracle, ModeOutcome, OracleParams, Verdict};
pub use protocol::{check_template, generate_template, Injection, ProtocolTemplate};
pub use rng::SplitMix64;
pub use shrink::shrink;
