//! Property tests for the vector-clock happens-before relation.
//!
//! Two layers of evidence that `dampi_clocks::VectorClock` recovers the
//! exact causal order the verifiers rely on:
//!
//! 1. Against a first-principles oracle: on random message traces, clock
//!    comparison must equal the transitive closure of program order plus
//!    send→receive edges (the Fidge/Mattern theorem, paper §II-C).
//! 2. Against the ISP baseline: on random generated programs, vector-mode
//!    DAMPI and the centralized ISP scheduler must report the same error
//!    sets and — when neither is budget-capped — the same total match
//!    sets. Both claim *exact* causality, so any gap is a bug in one of
//!    them, not clock imprecision.

use dampi_clocks::{ClockOrd, ClockStamp, LogicalClock, VectorClock};
use dampi_core::{ClockMode, DampiConfig, DampiVerifier, PiggybackMechanism, VerificationReport};
use dampi_fuzz::{generate, GenParams};
use dampi_isp::IspVerifier;
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::generated::{GenProgram, GenSpec};
use proptest::prelude::*;

/// One event of a synthetic trace: local work, or a message between two
/// distinct processes.
#[derive(Debug, Clone, Copy)]
enum Ev {
    Local { proc: usize },
    Msg { src: usize, dst: usize },
}

/// Decode proptest's raw integer tuples into a well-formed trace over
/// `nprocs` processes (message endpoints always distinct).
fn decode(nprocs: usize, raw: &[(u8, usize, usize)]) -> Vec<Ev> {
    raw.iter()
        .map(|&(kind, a, b)| {
            let proc = a % nprocs;
            if kind == 0 {
                Ev::Local { proc }
            } else {
                Ev::Msg {
                    src: proc,
                    dst: (proc + 1 + b % (nprocs - 1)) % nprocs,
                }
            }
        })
        .collect()
}

/// Replay `trace` through real vector clocks, producing one stamp per
/// event, and independently build the ground-truth happens-before matrix
/// by transitive closure over program order + message edges.
fn replay(nprocs: usize, trace: &[Ev]) -> (Vec<Vec<u64>>, Vec<Vec<bool>>) {
    struct Trace {
        clocks: Vec<VectorClock>,
        stamps: Vec<Vec<u64>>,
        edges: Vec<(usize, usize)>,
        last_of: Vec<Option<usize>>,
    }
    impl Trace {
        fn event(&mut self, p: usize) -> usize {
            self.clocks[p].tick();
            self.stamps.push(self.clocks[p].components().to_vec());
            let e = self.stamps.len() - 1;
            if let Some(prev) = self.last_of[p] {
                self.edges.push((prev, e));
            }
            self.last_of[p] = Some(e);
            e
        }
    }
    let mut t = Trace {
        clocks: (0..nprocs).map(|r| VectorClock::zero(r, nprocs)).collect(),
        stamps: Vec::new(),
        edges: Vec::new(),
        last_of: vec![None; nprocs],
    };
    for ev in trace {
        match *ev {
            Ev::Local { proc } => {
                t.event(proc);
            }
            Ev::Msg { src, dst } => {
                let send = t.event(src);
                let stamp = t.clocks[src].stamp();
                t.clocks[dst].merge(&stamp);
                let recv = t.event(dst);
                t.edges.push((send, recv));
            }
        }
    }
    let Trace { stamps, edges, .. } = t;
    let n = stamps.len();
    let mut hb = vec![vec![false; n]; n];
    for &(a, b) in &edges {
        hb[a][b] = true;
    }
    for k in 0..n {
        // Every edge points at a later event index, so the graph is acyclic
        // and row k cannot change during its own iteration — snapshot it.
        let via_k = hb[k].clone();
        for row in hb.iter_mut() {
            if row[k] {
                for (j, &reach) in via_k.iter().enumerate() {
                    if reach {
                        row[j] = true;
                    }
                }
            }
        }
    }
    (stamps, hb)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vector_hb_equals_transitive_closure(
        nprocs in 2usize..5,
        raw in proptest::collection::vec((0u8..2, 0usize..8, 0usize..8), 1..40),
    ) {
        let trace = decode(nprocs, &raw);
        let (stamps, hb) = replay(nprocs, &trace);
        for i in 0..stamps.len() {
            for j in 0..stamps.len() {
                let a = ClockStamp::Vector(stamps[i].clone());
                let b = ClockStamp::Vector(stamps[j].clone());
                let got = VectorClock::compare(&a, &b);
                // Every event ticks its owner first, so distinct events
                // never carry equal stamps.
                let want = if i == j {
                    ClockOrd::Equal
                } else if hb[i][j] {
                    ClockOrd::Before
                } else if hb[j][i] {
                    ClockOrd::After
                } else {
                    ClockOrd::Concurrent
                };
                prop_assert_eq!(got, want, "events {} vs {}", i, j);
            }
        }
    }
}

const MAX_INTERLEAVINGS: u64 = 800;

fn isp_report(spec: &GenSpec) -> VerificationReport {
    let sim = SimConfig::new(spec.nprocs)
        .with_policy(MatchPolicy::LowestRank)
        .with_deterministic(true);
    let mut v = IspVerifier::new(sim);
    v.cfg.max_interleavings = Some(MAX_INTERLEAVINGS);
    v.verify(&GenProgram::new(spec.clone()))
}

fn vec_report(spec: &GenSpec) -> VerificationReport {
    let sim = SimConfig::new(spec.nprocs)
        .with_policy(MatchPolicy::LowestRank)
        .with_deterministic(true);
    let cfg = DampiConfig::default()
        .with_clock_mode(ClockMode::Vector)
        .with_piggyback(PiggybackMechanism::SeparateMessage)
        .with_max_interleavings(MAX_INTERLEAVINGS);
    DampiVerifier::with_config(sim, cfg).verify(&GenProgram::new(spec.clone()))
}

proptest! {
    // Each case runs two full verification campaigns; keep the count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn vector_mode_agrees_with_isp_on_generated_programs(seed in 0u64..10_000) {
        let spec = generate(seed, &GenParams::for_seed(seed));
        let isp = isp_report(&spec);
        let vec = vec_report(&spec);
        prop_assert_eq!(
            isp.error_signature(),
            vec.error_signature(),
            "exact modes disagree on errors for seed {}", seed
        );
        if !isp.budget_exhausted && !vec.budget_exhausted && isp.error_signature().is_empty() {
            prop_assert_eq!(
                isp.total_discovered_matches(),
                vec.total_discovered_matches(),
                "exact modes disagree on match sets for seed {}", seed
            );
        }
    }
}
