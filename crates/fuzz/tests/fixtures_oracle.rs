//! The committed fuzz-mined fixtures stay fixed: every one must pass the
//! differential oracle with a fully classified verdict, and the
//! collective-ordering reproducer must stay *clean* in every mode.
//!
//! `fuzz_collective_phantom_deadlock` regresses the bug where the causal
//! model exchanged collective clocks along the operation's dataflow only
//! (all-to-root for `Gather`), weaker than the runtime's rendezvous
//! collectives. A post-gather send then looked concurrent with a
//! pre-gather wildcard receive, the verifier forced that unrealizable
//! match, and the stuck replay was reported as a deadlock in a clean
//! program — in all seven modes at once, since ISP and DAMPI shared the
//! dataflow model.

use dampi_fuzz::{run_oracle, OracleParams};
use dampi_workloads::generated::fixtures;

#[test]
fn collective_phantom_deadlock_is_clean_in_every_mode() {
    let spec = fixtures::collective_phantom_deadlock();
    let verdict = run_oracle(&spec, &OracleParams::default());
    for mode in &verdict.modes {
        assert!(
            mode.errors.is_empty(),
            "mode {} reports {:?} on a clean program",
            mode.mode,
            mode.errors
        );
    }
    assert_eq!(verdict.verdict, "agree", "detail: {:?}", verdict.detail);
}

#[test]
fn every_committed_fixture_is_classified() {
    for spec in fixtures::all() {
        let verdict = run_oracle(&spec, &OracleParams::default());
        assert!(
            !verdict.unclassified(),
            "{}: {} ({:?})",
            spec.name,
            verdict.verdict,
            verdict.detail
        );
    }
}
