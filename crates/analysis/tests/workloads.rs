//! End-to-end analyzer checks against the real workload crate: seeded-bug
//! patterns must fire exactly their intended lint, clean kernels must fire
//! none, and the symmetry pass must find the racers orbits it prunes with.

use dampi_analysis::{analyze, analyze_program};
use dampi_core::DampiVerifier;
use dampi_mpi::program::MpiProgram;
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::{nas, patterns};

fn verifier(np: usize) -> DampiVerifier {
    DampiVerifier::new(SimConfig::new(np).with_policy(MatchPolicy::LowestRank))
}

/// Error set of one campaign as comparable `(rank, message)` keys.
type ErrorKeys = Vec<(usize, String)>;

/// The coverage invariant, end to end: grow the plain and the pruned
/// campaign from the same traced free run (exactly the CLI's
/// `--prune-static` path) and return both error sets as comparable keys.
fn error_sets(np: usize, prog: &dyn MpiProgram) -> (ErrorKeys, ErrorKeys) {
    let v = verifier(np);
    let (events, run) = v.traced_run(prog);
    let base = v.verify_with_first_run(prog, run.clone());
    let analysis = analyze(prog.name(), np, &events, &run);
    let pruned = v
        .clone()
        .with_prune_plan(analysis.prune_plan())
        .verify_with_first_run(prog, run);
    let keys = |r: &dampi_core::report::VerificationReport| {
        let mut k: ErrorKeys = r
            .errors
            .iter()
            .map(|e| (e.rank, e.error.to_string()))
            .collect();
        k.sort();
        k
    };
    (keys(&base), keys(&pruned))
}

#[test]
fn collective_mismatch_fires_exactly_l001() {
    let report = analyze_program(&verifier(4), &patterns::collective_mismatch());
    let ids: Vec<&str> = report.lints.iter().map(|l| l.id).collect();
    assert_eq!(ids, ["L001"], "lints: {:?}", report.lints);
    assert_eq!(report.error_lints(), 1);
}

#[test]
fn request_leak_fires_exactly_l002() {
    let report = analyze_program(&verifier(4), &patterns::request_leak());
    let ids: Vec<&str> = report.lints.iter().map(|l| l.id).collect();
    assert_eq!(ids, ["L002"], "lints: {:?}", report.lints);
    // A warning, not an error: the CLI must not exit non-zero for it.
    assert_eq!(report.error_lints(), 0);
}

#[test]
fn clean_nas_kernels_fire_no_lints() {
    for (name, prog) in nas::all_nominal() {
        let report = analyze_program(&verifier(4), prog.as_ref());
        assert!(
            report.lints.is_empty(),
            "{name}: unexpected lints {:?}",
            report.lints
        );
    }
}

#[test]
fn racers_orbits_are_stable() {
    // The racers trace is deterministic (all payloads are constant), so the
    // symmetry pass must find the producer and consumer orbits every run.
    let report = analyze_program(&verifier(4), &patterns::symmetric_racers());
    let orbits: Vec<Vec<usize>> = report
        .plan
        .orbits
        .iter()
        .map(|o| o.iter().copied().collect())
        .collect();
    assert_eq!(orbits, vec![vec![0, 2], vec![1, 3]]);
}

#[test]
fn fig3_keeps_its_bug_under_pruning() {
    // Fig. 3's ranks 0 and 2 send *equal-length* payloads (22 vs. 33) to
    // rank 1's wildcards; the bug lives on the x==33 match only. The
    // payload digest must keep the two senders out of a common orbit, and
    // the pruned campaign must still report the assertion failure.
    let prog = patterns::fig3();
    let report = analyze_program(&verifier(3), &prog);
    assert!(
        report.plan.orbits.is_empty(),
        "content-distinct senders must not form an orbit: {:?}",
        report.plan.orbits
    );
    let (base, pruned) = error_sets(3, &prog);
    assert!(!base.is_empty(), "fig3 plain campaign must find the bug");
    assert_eq!(base, pruned, "pruning changed fig3's error set");
}

#[test]
fn alternate_schedule_deadlock_survives_pruning() {
    // The deadlock only manifests on a forced alternate match — exactly
    // the kind of fork an unsound prune plan would drop.
    let prog = patterns::deadlock_on_alternate_schedule();
    let (base, pruned) = error_sets(3, &prog);
    assert!(!base.is_empty(), "plain campaign must find the deadlock");
    assert_eq!(base, pruned, "pruning changed the deadlock error set");
}

#[test]
fn seeded_bugs_prune_nothing_by_accident() {
    // The lint patterns are asymmetric and wildcard-free: the prune plan
    // must stay empty so `analyze` never masks the bug it is reporting.
    for prog in [
        Box::new(patterns::collective_mismatch()) as Box<dyn dampi_mpi::MpiProgram>,
        Box::new(patterns::request_leak()),
    ] {
        let report = analyze_program(&verifier(4), prog.as_ref());
        assert!(report.plan.is_empty(), "plan: {:?}", report.plan);
    }
}
