//! End-to-end analyzer checks against the real workload crate: seeded-bug
//! patterns must fire exactly their intended lint, clean kernels must fire
//! none, and the symmetry pass must find the racers orbits it prunes with.
//! The session-protocol gates live here too: every committed spec must be
//! conformant against its workload (zero false positives), the seeded
//! L006–L008 patterns must fire exactly their lint, and protocol-guided
//! pruning must beat PrunePlan v2 without touching the error set.

use dampi_analysis::{analyze, analyze_program, analyze_program_with_protocol, ProtocolSpec};
use dampi_core::DampiVerifier;
use dampi_mpi::program::MpiProgram;
use dampi_mpi::{MatchPolicy, SimConfig};
use dampi_workloads::{nas, patterns, protocols, spec};

fn verifier(np: usize) -> DampiVerifier {
    DampiVerifier::new(SimConfig::new(np).with_policy(MatchPolicy::LowestRank))
}

/// Error set of one campaign as comparable `(rank, message)` keys.
type ErrorKeys = Vec<(usize, String)>;

/// The coverage invariant, end to end: grow the plain and the pruned
/// campaign from the same traced free run (exactly the CLI's
/// `--prune-static` path) and return both error sets as comparable keys.
fn error_sets(np: usize, prog: &dyn MpiProgram) -> (ErrorKeys, ErrorKeys) {
    let v = verifier(np);
    let (events, run) = v.traced_run(prog);
    let base = v.verify_with_first_run(prog, run.clone());
    let analysis = analyze(prog.name(), np, &events, &run);
    let pruned = v
        .clone()
        .with_prune_plan(analysis.prune_plan())
        .verify_with_first_run(prog, run);
    let keys = |r: &dampi_core::report::VerificationReport| {
        let mut k: ErrorKeys = r
            .errors
            .iter()
            .map(|e| (e.rank, e.error.to_string()))
            .collect();
        k.sort();
        k
    };
    (keys(&base), keys(&pruned))
}

#[test]
fn collective_mismatch_fires_exactly_l001() {
    let report = analyze_program(&verifier(4), &patterns::collective_mismatch());
    let ids: Vec<&str> = report.lints.iter().map(|l| l.id).collect();
    assert_eq!(ids, ["L001"], "lints: {:?}", report.lints);
    assert_eq!(report.error_lints(), 1);
}

#[test]
fn request_leak_fires_exactly_l002() {
    let report = analyze_program(&verifier(4), &patterns::request_leak());
    let ids: Vec<&str> = report.lints.iter().map(|l| l.id).collect();
    assert_eq!(ids, ["L002"], "lints: {:?}", report.lints);
    // A warning, not an error: the CLI must not exit non-zero for it.
    assert_eq!(report.error_lints(), 0);
}

#[test]
fn clean_nas_kernels_fire_no_lints() {
    for (name, prog) in nas::all_nominal() {
        let report = analyze_program(&verifier(4), prog.as_ref());
        assert!(
            report.lints.is_empty(),
            "{name}: unexpected lints {:?}",
            report.lints
        );
    }
}

#[test]
fn racers_orbits_are_stable() {
    // The racers trace is deterministic (all payloads are constant), so the
    // symmetry pass must find the producer and consumer orbits every run.
    let report = analyze_program(&verifier(4), &patterns::symmetric_racers());
    let orbits: Vec<Vec<usize>> = report
        .plan
        .orbits
        .iter()
        .map(|o| o.iter().copied().collect())
        .collect();
    assert_eq!(orbits, vec![vec![0, 2], vec![1, 3]]);
}

#[test]
fn fig3_keeps_its_bug_under_pruning() {
    // Fig. 3's ranks 0 and 2 send *equal-length* payloads (22 vs. 33) to
    // rank 1's wildcards; the bug lives on the x==33 match only. The
    // payload digest must keep the two senders out of a common orbit, and
    // the pruned campaign must still report the assertion failure.
    let prog = patterns::fig3();
    let report = analyze_program(&verifier(3), &prog);
    assert!(
        report.plan.orbits.is_empty(),
        "content-distinct senders must not form an orbit: {:?}",
        report.plan.orbits
    );
    let (base, pruned) = error_sets(3, &prog);
    assert!(!base.is_empty(), "fig3 plain campaign must find the bug");
    assert_eq!(base, pruned, "pruning changed fig3's error set");
}

#[test]
fn stuck_wildcard_fires_l005() {
    // Rank 0's wildcard waits for tag 9 that nobody ever sends: the
    // refined match set is empty, so L005 fires (and L002 for the
    // never-completed request). L003 must stay quiet — the only real
    // traffic is balanced by a named receive.
    let report = analyze_program(&verifier(3), &patterns::stuck_wildcard());
    let ids: Vec<&str> = report.lints.iter().map(|l| l.id).collect();
    assert_eq!(ids, ["L002", "L005"], "lints: {:?}", report.lints);
    // L005 is the only error-severity finding (L002 is a warning).
    assert_eq!(report.error_lints(), 1);
    assert!(report.plan.is_empty(), "plan: {:?}", report.plan);
}

#[test]
fn matmul_ack_slaves_merge_obliviously() {
    // In ack mode the slaves' traces differ only in the *content* of the
    // task payloads they receive, and they receive exclusively by name:
    // the payload-oblivious pass must merge all three into one orbit,
    // and the pruned campaign must keep the error set byte-identical.
    use dampi_workloads::matmul::{Matmul, MatmulParams};
    let prog = Matmul::new(MatmulParams {
        ack_results: true,
        ..Default::default()
    });
    let v = DampiVerifier::new(SimConfig::new(4));
    let (events, run) = v.traced_run(&prog);
    let report = analyze(prog.name(), 4, &events, &run);
    let orbits: Vec<Vec<usize>> = report
        .plan
        .orbits
        .iter()
        .map(|o| o.iter().copied().collect())
        .collect();
    assert_eq!(orbits, vec![vec![1, 2, 3]], "plan: {:?}", report.plan);
    assert!(
        !report.plan.oblivious_receives.is_empty(),
        "merge must be licensed by masked receives"
    );
    let base = v.verify_with_first_run(&prog, run.clone());
    let pruned = v
        .clone()
        .with_prune_plan(report.prune_plan())
        .verify_with_first_run(&prog, run);
    assert!(
        pruned.interleavings < base.interleavings,
        "orbit must actually prune: {} -> {}",
        base.interleavings,
        pruned.interleavings
    );
    let keys = |r: &dampi_core::report::VerificationReport| {
        let mut k: ErrorKeys = r
            .errors
            .iter()
            .map(|e| (e.rank, e.error.to_string()))
            .collect();
        k.sort();
        k
    };
    assert_eq!(keys(&base), keys(&pruned));
}

#[test]
fn matmul_content_mode_stays_unmerged() {
    // Pinned: content-returning matmul routes row data through the
    // wildcard receives — masking is never licensed and no orbit forms.
    use dampi_workloads::matmul::{Matmul, MatmulParams};
    let report = analyze_program(
        &DampiVerifier::new(SimConfig::new(4)),
        &Matmul::new(MatmulParams::default()),
    );
    assert!(report.plan.orbits.is_empty(), "plan: {:?}", report.plan);
    assert!(report.plan.oblivious_receives.is_empty());
}

#[test]
fn adlb_oblivious_merges_beyond_exact() {
    // The task-pool trace varies run to run. The containment invariant
    // holds on *every* run: the oblivious grouping refines the exact one.
    // The strict improvement — merging one-task workers whose payloads
    // differ — depends on how the schedule dealt the tasks (a run whose
    // non-idle workers all did distinct work leaves nothing maskable), so
    // it is asserted over a handful of traced runs, not each one.
    use dampi_analysis::{passes, TraceModel};
    use dampi_core::bounds::MixingBound;
    use dampi_core::DampiConfig;
    use dampi_workloads::adlb::{Adlb, AdlbParams};
    let v = DampiVerifier::with_config(
        SimConfig::new(16).with_policy(MatchPolicy::LowestRank),
        DampiConfig::default().with_bound(MixingBound::K(1)),
    );
    let prog = Adlb::new(AdlbParams::default());
    let merged = |orbits: &[std::collections::BTreeSet<usize>]| -> usize {
        orbits.iter().map(|o| o.len()).sum()
    };
    let mut strict_seen = false;
    for _ in 0..8 {
        let (events, run) = v.traced_run(&prog);
        let model = TraceModel::build(16, &events, &run.epochs);
        let exact = passes::rank_orbits(&model);
        let (oblivious, points) = passes::rank_orbits_oblivious(&model);
        for orbit in &exact {
            assert!(
                oblivious.iter().any(|o| orbit.is_subset(o)),
                "exact orbit {orbit:?} lost under oblivious grouping {oblivious:?}"
            );
        }
        if merged(&oblivious) > merged(&exact) {
            assert!(!points.is_empty(), "a strict merge needs a masking license");
            strict_seen = true;
            break;
        }
    }
    assert!(
        strict_seen,
        "oblivious pass never merged beyond exact across 8 traced runs"
    );
}

#[test]
fn alternate_schedule_deadlock_survives_pruning() {
    // The deadlock only manifests on a forced alternate match — exactly
    // the kind of fork an unsound prune plan would drop.
    let prog = patterns::deadlock_on_alternate_schedule();
    let (base, pruned) = error_sets(3, &prog);
    assert!(!base.is_empty(), "plain campaign must find the deadlock");
    assert_eq!(base, pruned, "pruning changed the deadlock error set");
}

#[test]
fn clean_spec_kernels_fire_no_lints() {
    // The SpecMPI2007 skeletons join the zero-false-positive gate: none
    // of L001–L008 may fire on a nominal run.
    for (name, prog) in spec::all_nominal() {
        let report = analyze_program(&verifier(4), prog.as_ref());
        assert!(
            report.lints.is_empty(),
            "{name}: unexpected lints {:?}",
            report.lints
        );
    }
}

#[test]
fn clean_parmetis_fires_no_lints() {
    use dampi_workloads::parmetis::{Parmetis, ParmetisParams};
    let prog = Parmetis::new(ParmetisParams::nominal(4, 0.2));
    let report = analyze_program(&verifier(4), &prog);
    assert!(
        report.lints.is_empty(),
        "parmetis: unexpected lints {:?}",
        report.lints
    );
}

/// The committed workloads each committed spec is checked against, at the
/// world size the spec's literal roles assume.
fn spec_programs() -> Vec<(&'static str, usize, Box<dyn MpiProgram>)> {
    use dampi_workloads::adlb::{Adlb, AdlbParams};
    use dampi_workloads::matmul::{Matmul, MatmulParams};
    vec![
        ("matmul", 4, Box::new(Matmul::new(MatmulParams::default()))),
        (
            "matmul_ack",
            4,
            Box::new(Matmul::new(MatmulParams {
                ack_results: true,
                ..MatmulParams::default()
            })),
        ),
        ("adlb", 4, Box::new(Adlb::new(AdlbParams::default()))),
        ("racers", 4, Box::new(patterns::symmetric_racers())),
        ("ordered_stages", 3, Box::new(patterns::ordered_stages())),
        ("protocol_demo", 3, Box::new(patterns::protocol_demo())),
    ]
}

#[test]
fn every_committed_spec_is_conformant_with_zero_false_positives() {
    for (name, np, prog) in spec_programs() {
        let spec = ProtocolSpec::parse(protocols::by_name(name).expect("committed spec"))
            .unwrap_or_else(|e| panic!("{name}: spec must parse: {e}"));
        let report = analyze_program_with_protocol(&verifier(np), prog.as_ref(), Some(&spec))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let p = report.protocol.as_ref().expect("protocol block present");
        assert_eq!(
            (p.l006, p.l007, p.l008),
            (0, 0, 0),
            "{name}: false positive — {:?}",
            report.lints
        );
        assert!(
            p.rank_status.iter().all(|s| *s == "conformant"),
            "{name}: {:?}",
            p.rank_status
        );
    }
}

#[test]
fn seeded_protocol_violations_fire_exactly_their_lint() {
    let spec = ProtocolSpec::parse(protocols::PROTOCOL_DEMO).unwrap();
    let cases: Vec<(&str, Box<dyn MpiProgram>, &str)> = vec![
        ("order", Box::new(patterns::protocol_order_bug()), "L006"),
        ("peer", Box::new(patterns::protocol_peer_bug()), "L007"),
        ("short", Box::new(patterns::protocol_short_bug()), "L008"),
    ];
    for (what, prog, want) in cases {
        let report =
            analyze_program_with_protocol(&verifier(3), prog.as_ref(), Some(&spec)).unwrap();
        let ids: Vec<&str> = report.lints.iter().map(|l| l.id).collect();
        assert_eq!(ids, [want], "{what} bug: lints {:?}", report.lints);
        assert_eq!(
            report.lints[0].ranks,
            [0],
            "{what} bug fires on the coordinator"
        );
        assert_eq!(report.error_lints(), 1, "{what} bug must drive exit 2");
        // A non-conformant run must contribute no pruning facts.
        assert!(report.plan.protocol_deterministic.is_empty());
        assert!(report.plan.protocol_infeasible.is_empty());
    }
}

#[test]
fn ordered_stages_protocol_prunes_beyond_v2_with_equal_errors() {
    // The committed headline: PrunePlan v2 keeps both interleavings of
    // the sink's first wildcard; the protocol pins it to stage1 and the
    // campaign drops to a single replayed schedule with the error set
    // (empty here) byte-identical.
    let prog = patterns::ordered_stages();
    let np = 3;
    let v = verifier(np);
    let (events, run) = v.traced_run(&prog);
    let base = v.verify_with_first_run(&prog, run.clone());
    let v2 = analyze(prog.name(), np, &events, &run);
    let spec = ProtocolSpec::parse(protocols::ORDERED_STAGES).unwrap();
    let v3 =
        dampi_analysis::analyze_with_protocol(prog.name(), np, &events, &run, Some(&spec)).unwrap();
    assert!(
        !v3.plan.protocol_deterministic.is_empty(),
        "protocol must pin the sink's wildcards: {:?}",
        v3.plan
    );
    let pruned_v2 = v
        .clone()
        .with_prune_plan(v2.prune_plan())
        .verify_with_first_run(&prog, run.clone());
    let pruned_v3 = v
        .clone()
        .with_prune_plan(v3.prune_plan())
        .verify_with_first_run(&prog, run);
    assert!(
        pruned_v3.interleavings < pruned_v2.interleavings,
        "protocol plan must prune at least one replay v2 keeps: v2 {} vs v3 {}",
        pruned_v2.interleavings,
        pruned_v3.interleavings
    );
    let keys = |r: &dampi_core::report::VerificationReport| {
        let mut k: ErrorKeys = r
            .errors
            .iter()
            .map(|e| (e.rank, e.error.to_string()))
            .collect();
        k.sort();
        k
    };
    assert_eq!(keys(&base), keys(&pruned_v2));
    assert_eq!(keys(&base), keys(&pruned_v3));
    assert!(
        pruned_v3.protocol_alternates_pruned + pruned_v3.protocol_wildcards_deterministic > 0,
        "campaign counters must attribute the win to the protocol"
    );
}

#[test]
fn seeded_bugs_prune_nothing_by_accident() {
    // The lint patterns are asymmetric and wildcard-free: the prune plan
    // must stay empty so `analyze` never masks the bug it is reporting.
    for prog in [
        Box::new(patterns::collective_mismatch()) as Box<dyn dampi_mpi::MpiProgram>,
        Box::new(patterns::request_leak()),
    ] {
        let report = analyze_program(&verifier(4), prog.as_ref());
        assert!(report.plan.is_empty(), "plan: {:?}", report.plan);
    }
}
