//! Property-based checks of the cross-epoch refinement and the full
//! prune pipeline, with the *real* verifier as the soundness oracle:
//! random small master/worker programs are verified plain and pruned from
//! the same traced free run, and the error sets must be byte-identical —
//! the end-to-end contract every analysis pass must preserve.

use std::collections::BTreeSet;

use dampi_analysis::{analyze, passes, TraceModel};
use dampi_core::report::VerificationReport;
use dampi_core::DampiVerifier;
use dampi_mpi::envelope::codec;
use dampi_mpi::proc_api::user_assert;
use dampi_mpi::program::FnProgram;
use dampi_mpi::{Comm, MatchPolicy, Mpi, SimConfig, ANY_SOURCE, ANY_TAG};
use proptest::prelude::*;

/// One receive rank 0 posts, in program order.
#[derive(Debug, Clone, Copy)]
enum RecvSpec {
    /// `recv(src, tag)` — a named claim the refinement may count on.
    Named(usize, i32),
    /// `recv(ANY_SOURCE, tag_spec)`, optionally asserting the payload is
    /// not `poison` — a content-dependent branch that must block any
    /// payload-oblivious merge of the senders involved.
    Wild(i32, Option<u64>),
}

/// The whole scenario: what each sender rank sends to rank 0 (tag,
/// payload value), and the receives rank 0 posts. Programs may deadlock
/// or fail assertions; the contract is only that pruning never *changes*
/// the reported error set.
#[derive(Debug, Clone)]
struct Scenario {
    nprocs: usize,
    sends: Vec<Vec<(i32, u64)>>,
    recvs: Vec<RecvSpec>,
}

/// Decode the raw sampled integers into a scenario. Tags come from
/// {5, 7}; wildcard tag specs from {5, 7, ANY_TAG}; a poison value of 0
/// means "no assertion".
fn build(nprocs: usize, raw_sends: &[Vec<(u8, u64)>], raw_recvs: &[(u8, usize, u64)]) -> Scenario {
    let tag = |t: u8| if t == 0 { 5 } else { 7 };
    let mut sends: Vec<Vec<(i32, u64)>> = raw_sends
        .iter()
        .map(|msgs| msgs.iter().map(|&(t, v)| (tag(t), v)).collect())
        .collect();
    sends.truncate(nprocs - 1);
    while sends.len() < nprocs - 1 {
        sends.push(Vec::new());
    }
    let recvs = raw_recvs
        .iter()
        .map(|&(kind, src, poison)| match kind {
            0 | 1 => RecvSpec::Named(1 + (src - 1) % (nprocs - 1), tag(kind)),
            2 => RecvSpec::Wild(5, (poison > 0).then_some(poison)),
            3 => RecvSpec::Wild(7, (poison > 0).then_some(poison)),
            _ => RecvSpec::Wild(ANY_TAG, (poison > 0).then_some(poison)),
        })
        .collect();
    Scenario {
        nprocs,
        sends,
        recvs,
    }
}

fn program(
    sc: &Scenario,
) -> FnProgram<impl Fn(&mut dyn Mpi) -> dampi_mpi::Result<()> + Send + Sync> {
    let sc = sc.clone();
    FnProgram(move |mpi: &mut dyn Mpi| {
        let me = mpi.world_rank();
        if me == 0 {
            for spec in &sc.recvs {
                match *spec {
                    RecvSpec::Named(src, tag) => {
                        let _ = mpi.recv(Comm::WORLD, src as i32, tag)?;
                    }
                    RecvSpec::Wild(tag, poison) => {
                        let (_, data) = mpi.recv(Comm::WORLD, ANY_SOURCE, tag)?;
                        if let Some(p) = poison {
                            user_assert(
                                data.len() != 8 || codec::decode_u64(&data) != p,
                                "poisoned payload reached the wildcard",
                            )?;
                        }
                    }
                }
            }
        } else if let Some(msgs) = sc.sends.get(me - 1) {
            for &(tag, val) in msgs {
                mpi.send(Comm::WORLD, 0, tag, codec::encode_u64(val))?;
            }
        }
        Ok(())
    })
}

fn error_keys(r: &VerificationReport) -> Vec<(usize, String)> {
    let mut k: Vec<(usize, String)> = r
        .errors
        .iter()
        .map(|e| (e.rank, e.error.to_string()))
        .collect();
    k.sort();
    k
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// End-to-end soundness: whatever the passes prune, the pruned
    /// campaign reports exactly the plain campaign's error set. Also
    /// pins the structural laws the passes promise: refined sets are
    /// subsets of the base sets, never drop the observed match, subsume
    /// the count-based refutations, and the fixed point lands within its
    /// bound. And if L005 claims a definitely-stuck receive, the plain
    /// campaign must indeed report an error.
    #[test]
    fn pruning_preserves_error_sets(
        nprocs in 2usize..5,
        raw_sends in prop::collection::vec(
            prop::collection::vec((0u8..2, 1u64..4), 0..3), 1..4),
        raw_recvs in prop::collection::vec((0u8..5, 1usize..4, 0u64..4), 0..4),
    ) {
        let sc = build(nprocs, &raw_sends, &raw_recvs);
        let prog = program(&sc);
        let v = DampiVerifier::new(
            SimConfig::new(sc.nprocs).with_policy(MatchPolicy::LowestRank),
        );
        let (events, run) = v.traced_run(&prog);
        let model = TraceModel::build(sc.nprocs, &events, &run.epochs);

        let base_sets = passes::match_sets(&model);
        let refinement = passes::refine_match_sets(&model, &base_sets);
        prop_assert!(refinement.iterations <= model.epochs.len() + 2);
        for (k, base) in &base_sets {
            match (base, refinement.sets.get(k)) {
                (Some(b), Some(Some(r))) => prop_assert!(r.is_subset(b), "{:?}", k),
                (None, Some(None)) => {}
                other => prop_assert!(false, "{:?}: shape changed: {:?}", k, other),
            }
        }
        for e in &model.epochs {
            if let (Some(m), Some(Some(set))) =
                (e.matched_src, refinement.sets.get(&(e.rank, e.clock)))
            {
                if base_sets[&(e.rank, e.clock)]
                    .as_ref()
                    .is_some_and(|b| b.contains(&m))
                {
                    prop_assert!(set.contains(&m), "observed match dropped at {:?}", e);
                }
            }
        }
        // The positional fixed point subsumes count-based refutation.
        for &(rank, clock, s) in &passes::infeasible_alternates(&model) {
            if let Some(Some(set)) = refinement.sets.get(&(rank, clock)) {
                prop_assert!(
                    !set.contains(&s),
                    "counting refuted ({},{},{}) but refinement kept it",
                    rank, clock, s
                );
            }
        }

        let base = v.verify_with_first_run(&prog, run.clone());
        let analysis = analyze("prop", sc.nprocs, &events, &run);
        let pruned = v
            .clone()
            .with_prune_plan(analysis.prune_plan())
            .verify_with_first_run(&prog, run);
        prop_assert_eq!(error_keys(&base), error_keys(&pruned), "scenario {:?}", sc);
        prop_assert!(pruned.interleavings <= base.interleavings);
        if analysis.lints.iter().any(|l| l.id == "L005") {
            prop_assert!(
                !base.errors.is_empty(),
                "L005 claimed a definite bug on an error-free program: {:?}",
                sc
            );
        }
    }

    /// The op-level candidate sets (L005's evidence) stay within the
    /// trivially-sound envelope of existing world ranks.
    #[test]
    fn op_candidates_stay_within_envelope(
        nprocs in 2usize..5,
        raw_sends in prop::collection::vec(
            prop::collection::vec((0u8..2, 1u64..4), 0..3), 1..4),
        raw_recvs in prop::collection::vec((0u8..5, 1usize..4, 0u64..4), 0..4),
    ) {
        let sc = build(nprocs, &raw_sends, &raw_recvs);
        let prog = program(&sc);
        let v = DampiVerifier::new(
            SimConfig::new(sc.nprocs).with_policy(MatchPolicy::LowestRank),
        );
        let (events, run) = v.traced_run(&prog);
        let model = TraceModel::build(sc.nprocs, &events, &run.epochs);
        let envelope: BTreeSet<usize> = (0..sc.nprocs).collect();
        for ((rank, _pos), set) in passes::wildcard_op_candidates(&model) {
            prop_assert!(rank < sc.nprocs);
            prop_assert!(set.is_subset(&envelope));
        }
    }
}
