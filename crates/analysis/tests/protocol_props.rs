//! Property-based law for the session-protocol subsystem: the projection
//! of a *well-formed global type* is deadlock-free and pairwise-dual.
//!
//! Concretely: walk a random global protocol in its declared order and
//! emit the canonical execution it describes — every message's send
//! before its receive, collectives at the same global position on all
//! ranks. That trace is realisable (the global order is a schedule, so
//! the protocol cannot describe a deadlock), and duality means each
//! rank's *local view* of it must be accepted by that rank's projected
//! NFA: the conformance checker must report every rank conformant with
//! zero L006–L008 lints. A single failing case would mean projection
//! dropped, reordered, or misaddressed an action relative to its dual.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use dampi_analysis::{conformance, TraceModel};
use dampi_clocks::ClockStamp;
use dampi_core::epoch::{EpochRecord, NdKind};
use dampi_mpi::trace::{TraceEvent, TraceOp};
use dampi_mpi::{Comm, ANY_SOURCE};
use proptest::prelude::*;

/// Tag every funnel statement uses (distinct from the direct-tag pool on
/// purpose is *not* required — the subset NFA disambiguates reuse).
const FUNNEL_TAG: i32 = 50;

/// One statement of a generated global protocol.
#[derive(Debug, Clone)]
enum Stmt {
    /// `msg p<from> -> p<to> : <tag>` — a one-to-one message.
    Direct { from: usize, to: usize, tag: i32 },
    /// `repeat <n> { msg any f -> p<to> : FUNNEL_TAG }` where `f` is
    /// everyone but the receiver; `wild` receives post `ANY_SOURCE`.
    Funnel { to: usize, count: usize, wild: bool },
    /// `collective <name>`, all ranks at this global position.
    Collective(&'static str),
}

#[derive(Debug, Clone)]
struct Proto {
    nprocs: usize,
    stmts: Vec<Stmt>,
}

/// Raw sampled statement: `(kind, a, b, n)` decoded against a concrete
/// world size by [`build`] (the vendored proptest samples plain
/// integers; decoding keeps every draw well-formed by construction).
/// `n` multiplexes tag/count/wildcardness — they are never needed by the
/// same statement kind at once.
type RawStmt = (usize, usize, usize, usize);

fn build(np_raw: usize, raw: &[RawStmt]) -> Proto {
    let np = 3 + np_raw % 3; // 3..=5
    let stmts = raw
        .iter()
        .map(|&(kind, a, b, n)| match kind % 3 {
            0 => {
                let from = a % np;
                let mut to = b % np;
                if to == from {
                    to = (to + 1) % np;
                }
                Stmt::Direct {
                    from,
                    to,
                    tag: 10 + (n % 4) as i32,
                }
            }
            1 => Stmt::Funnel {
                to: a % np,
                count: 1 + n % 3,
                wild: n >= 8,
            },
            _ => Stmt::Collective(["barrier", "bcast", "allreduce"][a % 3]),
        })
        .collect();
    Proto { nprocs: np, stmts }
}

/// Render the protocol in the spec language.
fn spec_text(p: &Proto) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "protocol generated");
    for r in 0..p.nprocs {
        let _ = writeln!(s, "role p{r} = {r}");
    }
    for (i, st) in p.stmts.iter().enumerate() {
        if let Stmt::Funnel { to, .. } = st {
            let members: Vec<String> = (0..p.nprocs)
                .filter(|r| r != to)
                .map(|r| r.to_string())
                .collect();
            let _ = writeln!(s, "role f{i} = {{{}}}", members.join(", "));
        }
    }
    for (i, st) in p.stmts.iter().enumerate() {
        match st {
            Stmt::Direct { from, to, tag } => {
                let _ = writeln!(s, "msg p{from} -> p{to} : {tag}");
            }
            Stmt::Funnel { to, count, .. } => {
                let _ = writeln!(
                    s,
                    "repeat {count} {{ msg any f{i} -> p{to} : {FUNNEL_TAG} }}"
                );
            }
            Stmt::Collective(name) => {
                let _ = writeln!(s, "collective {name}");
            }
        }
    }
    s
}

/// Emit the canonical execution of the global type: statements in
/// declared order, each message's send before its receive. Wildcard
/// funnel receives get matching epoch records (the k-th wildcard op on a
/// rank pairs with its k-th epoch).
fn canonical_trace(p: &Proto) -> (Vec<TraceEvent>, Vec<EpochRecord>) {
    let np = p.nprocs;
    let mut seq = vec![0u64; np];
    let mut wilds = vec![0u64; np];
    let mut events = Vec::new();
    let mut epochs = Vec::new();
    let push = |events: &mut Vec<TraceEvent>, seq: &mut Vec<u64>, rank: usize, op: TraceOp| {
        events.push(TraceEvent {
            rank,
            seq: seq[rank],
            vt: 0.0,
            op,
        });
        seq[rank] += 1;
    };
    for st in &p.stmts {
        match st {
            Stmt::Direct { from, to, tag } => {
                push(
                    &mut events,
                    &mut seq,
                    *from,
                    TraceOp::Isend {
                        comm: 0,
                        dest: *to as i32,
                        tag: *tag,
                        bytes: 1,
                        digest: 0,
                    },
                );
                push(
                    &mut events,
                    &mut seq,
                    *to,
                    TraceOp::Irecv {
                        comm: 0,
                        src: *from as i32,
                        tag: *tag,
                    },
                );
            }
            Stmt::Funnel { to, count, wild } => {
                let others: Vec<usize> = (0..np).filter(|r| r != to).collect();
                for k in 0..*count {
                    let sender = others[k % others.len()];
                    push(
                        &mut events,
                        &mut seq,
                        *to,
                        TraceOp::Irecv {
                            comm: 0,
                            src: if *wild { ANY_SOURCE } else { sender as i32 },
                            tag: FUNNEL_TAG,
                        },
                    );
                    push(
                        &mut events,
                        &mut seq,
                        sender,
                        TraceOp::Isend {
                            comm: 0,
                            dest: *to as i32,
                            tag: FUNNEL_TAG,
                            bytes: 1,
                            digest: 0,
                        },
                    );
                    if *wild {
                        wilds[*to] += 1;
                        epochs.push(EpochRecord {
                            rank: *to,
                            clock: wilds[*to],
                            stamp: ClockStamp::Lamport(wilds[*to]),
                            comm: Comm::WORLD,
                            tag_spec: FUNNEL_TAG,
                            kind: NdKind::Recv,
                            in_region: false,
                            guided: false,
                            matched_src: Some(sender),
                            alternates: BTreeSet::new(),
                        });
                    }
                }
            }
            Stmt::Collective(name) => {
                let trace_name: &'static str = match *name {
                    "allreduce" => "allreduce_u64",
                    other => other,
                };
                for rank in 0..np {
                    push(
                        &mut events,
                        &mut seq,
                        rank,
                        TraceOp::Collective {
                            comm: 0,
                            name: trace_name.into(),
                        },
                    );
                }
            }
        }
    }
    for rank in 0..np {
        push(&mut events, &mut seq, rank, TraceOp::Finalize);
    }
    (events, epochs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline law: every rank's local view of the canonical global
    /// execution is accepted by its projection — no false L006/L007/L008,
    /// every rank conformant.
    #[test]
    fn projection_accepts_the_canonical_dual_trace(
        np_raw in 0usize..3,
        raw in proptest::collection::vec((0usize..3, 0usize..8, 0usize..8, 0usize..16), 1..8),
    ) {
        let p = build(np_raw, &raw);
        let text = spec_text(&p);
        let spec = dampi_analysis::ProtocolSpec::parse(&text)
            .unwrap_or_else(|e| panic!("generated spec must parse: {e}\n{text}"));
        let (events, epochs) = canonical_trace(&p);
        let model = TraceModel::build(p.nprocs, &events, &epochs);
        let c = conformance::check(&spec, &model)
            .unwrap_or_else(|e| panic!("instantiation must succeed: {e}\n{text}"));
        prop_assert!(
            c.all_conformant() && c.lints.is_empty(),
            "projection rejected its own canonical trace:\n{text}\nlints: {:?}\nstatus: {:?}",
            c.lints,
            c.rank_status
        );
    }

    /// Facts stay inside the law too: a protocol-deterministic claim may
    /// only name an epoch whose matched source the checker also accepted,
    /// and infeasible claims must never name a matched source.
    #[test]
    fn facts_never_contradict_the_accepted_trace(
        np_raw in 0usize..3,
        raw in proptest::collection::vec((0usize..3, 0usize..8, 0usize..8, 0usize..16), 1..8),
    ) {
        let p = build(np_raw, &raw);
        let text = spec_text(&p);
        let spec = dampi_analysis::ProtocolSpec::parse(&text).unwrap();
        let (events, epochs) = canonical_trace(&p);
        let model = TraceModel::build(p.nprocs, &events, &epochs);
        let c = conformance::check(&spec, &model).unwrap();
        for &(rank, clock) in &c.facts.deterministic {
            prop_assert!(
                epochs.iter().any(|e| e.rank == rank && e.clock == clock),
                "deterministic fact names unknown epoch ({rank},{clock})"
            );
        }
        for &(rank, clock, src) in &c.facts.infeasible {
            let matched = epochs
                .iter()
                .find(|e| e.rank == rank && e.clock == clock)
                .and_then(|e| e.matched_src);
            prop_assert!(
                matched != Some(src),
                "infeasible fact contradicts the accepted match ({rank},{clock},{src})"
            );
        }
    }
}
