//! Definite-bug lints over the traced free run.
//!
//! Each lint has a stable ID (`L001`..`L005`) and fires only on evidence
//! that is conclusive *from the trace alone* — no lint depends on which
//! schedule the free run happened to take, so a lint that fires on one
//! interleaving fires on all of them. (That is why L005 consumes the
//! *op-level* refinement fixed point, [`passes::wildcard_op_candidates`],
//! whose claims are all structural, rather than the epoch-level one,
//! whose claims may lean on the analyzed schedule's observed matches.)

use std::collections::BTreeMap;
use std::fmt;

use dampi_mpi::trace::TraceOp;
use dampi_mpi::types::{source_matches, tag_matches};
use dampi_mpi::{Tag, ANY_TAG};

use crate::model::{TraceModel, WORLD};
use crate::passes;

/// Lint severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The program is definitely broken (deadlock or standard violation).
    Error,
    /// Resource hygiene / likely-bug finding.
    Warning,
}

impl Severity {
    /// Stable lowercase label used in JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Stable lint ID (e.g. `"L001"`), safe to grep for in CI.
    pub id: &'static str,
    /// Stable kind slug (e.g. `"collective-mismatch"`).
    pub kind: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// World ranks implicated.
    pub ranks: Vec<usize>,
    /// Human-readable evidence.
    pub message: String,
}

impl Lint {
    /// Machine-readable form, embedded in the analysis JSON document.
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "id": self.id,
            "kind": self.kind,
            "severity": self.severity.as_str(),
            "ranks": self.ranks,
            "message": self.message,
        })
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} (ranks {:?}): {}",
            self.id,
            self.severity.as_str(),
            self.kind,
            self.ranks,
            self.message
        )
    }
}

/// `L001`: ranks disagree on the sequence of collective operations on a
/// communicator — a guaranteed runtime mismatch (MPI requires all members
/// to call the same collectives in the same order).
const L001: &str = "L001";
/// `L002`: nonblocking requests completed fewer times than posted — the
/// program dropped request handles without waiting (R-leak).
const L002: &str = "L002";
/// `L003`: more sends toward a rank than that rank can ever receive on a
/// `(comm, tag)` envelope — messages are sent but provably never consumed.
const L003: &str = "L003";
/// `L004`: a blocking-style send to self with no receive posted first —
/// deadlocks the rank under synchronous (unbuffered) send semantics.
const L004: &str = "L004";
/// `L005`: a wildcard receive whose refined match set is empty at the
/// fixed point — no rank ever posts a compatible send that earlier
/// receives don't necessarily consume, so the receive is definitely stuck.
const L005: &str = "L005";

/// Run every lint over the model.
#[must_use]
pub fn run_lints(model: &TraceModel) -> Vec<Lint> {
    let mut out = Vec::new();
    collective_mismatch(model, &mut out);
    request_leak(model, &mut out);
    send_recv_imbalance(model, &mut out);
    self_send_deadlock(model, &mut out);
    stuck_wildcard_receive(model, &mut out);
    out
}

fn collective_name(op: &TraceOp) -> Option<(u32, &str)> {
    match op {
        TraceOp::Collective { comm, name } => Some((*comm, name.as_ref())),
        _ => None,
    }
}

/// L001 — collective-sequence mismatch across ranks, per communicator.
/// Two definite shapes: ranks differ at a position both reached, or a
/// rank *finalized* having called fewer collectives than a peer (it will
/// never show up for the missing ones).
fn collective_mismatch(model: &TraceModel, out: &mut Vec<Lint>) {
    let mut per_comm: BTreeMap<u32, Vec<(usize, Vec<&str>)>> = BTreeMap::new();
    for (rank, ops) in model.ops.iter().enumerate() {
        let mut seqs: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for op in ops {
            if let Some((comm, name)) = collective_name(op) {
                seqs.entry(comm).or_default().push(name);
            }
        }
        for (comm, seq) in seqs {
            per_comm.entry(comm).or_default().push((rank, seq));
        }
    }
    let finalized: Vec<bool> = model
        .ops
        .iter()
        .map(|ops| ops.iter().any(|op| matches!(op, TraceOp::Finalize)))
        .collect();
    for (comm, ranks) in &per_comm {
        if ranks.len() < 2 {
            continue;
        }
        let (r0, base) = &ranks[0];
        // One lint per communicator per shape, with every offending rank
        // grouped in — a 64-rank mismatch is one finding, not 63.
        let mut diverged: Vec<usize> = Vec::new();
        let mut witness: Option<(usize, &str, &str, usize)> = None;
        let mut short_finalized: Vec<usize> = Vec::new();
        let mut long_peer: Option<usize> = None;
        for (r, seq) in &ranks[1..] {
            let diverge = base
                .iter()
                .zip(seq.iter())
                .position(|(a, b)| a != b)
                .map(|i| (i, base[i], seq[i]));
            if let Some((i, a, b)) = diverge {
                diverged.push(*r);
                if witness.is_none_or(|(wi, ..)| i < wi) {
                    witness = Some((i, a, b, *r));
                }
            } else if base.len() != seq.len() {
                let (short, long, _sr) = if base.len() < seq.len() {
                    (*r0, *r, base.len())
                } else {
                    (*r, *r0, seq.len())
                };
                if finalized[short] {
                    if !short_finalized.contains(&short) {
                        short_finalized.push(short);
                    }
                    long_peer = Some(long);
                }
            }
        }
        if let Some((i, a, b, rw)) = witness {
            let mut involved = vec![*r0];
            involved.extend(diverged);
            out.push(Lint {
                id: L001,
                kind: "collective-mismatch",
                severity: Severity::Error,
                ranks: involved,
                message: format!(
                    "comm {comm}: collective #{i} is `{a}` on rank {r0} but `{b}` on rank {rw}"
                ),
            });
        }
        if let Some(long) = long_peer {
            let shorts = short_finalized.clone();
            out.push(Lint {
                id: L001,
                kind: "collective-mismatch",
                severity: Severity::Error,
                ranks: shorts.iter().copied().chain([long]).collect(),
                message: format!(
                    "comm {comm}: rank(s) {shorts:?} finalized having called fewer \
                     collectives than rank {long} — the extra calls can never complete"
                ),
            });
        }
    }
}

/// L002 — requests posted minus completions observed, per rank.
fn request_leak(model: &TraceModel, out: &mut Vec<Lint>) {
    for (rank, ops) in model.ops.iter().enumerate() {
        let mut posted = 0usize;
        let mut completed = 0usize;
        for op in ops {
            match op {
                TraceOp::Isend { .. } | TraceOp::Irecv { .. } => posted += 1,
                TraceOp::Wait { .. } => completed += 1,
                TraceOp::Test { completed: true } => completed += 1,
                _ => {}
            }
        }
        if posted > completed {
            out.push(Lint {
                id: L002,
                kind: "request-leak",
                severity: Severity::Warning,
                ranks: vec![rank],
                message: format!(
                    "{posted} request(s) posted but only {completed} completion(s) \
                     (wait/test) observed — {} request handle(s) leaked",
                    posted - completed
                ),
            });
        }
    }
}

/// L003 — per-destination `(comm, tag)` send/receive count imbalance.
/// Communicators are isolated matching domains, so every comm whose
/// membership the trace resolves (WORLD plus `comm_dup`/`comm_split`
/// results, see [`TraceModel::comms`]) gets its own channel accounting;
/// comm-relative destinations are decoded to world ranks through the
/// membership table. Receives posted with `ANY_TAG` are flexible
/// capacity; whatever surplus they cannot absorb is provably
/// undeliverable.
fn send_recv_imbalance(model: &TraceModel, out: &mut Vec<Lint>) {
    for (&comm, members) in &model.comms {
        for &dest in members {
            let mut sends: BTreeMap<Tag, usize> = BTreeMap::new();
            for ops in &model.ops {
                for op in ops {
                    if let TraceOp::Isend {
                        comm: c,
                        dest: d,
                        tag,
                        ..
                    } = op
                    {
                        if *c == comm && model.resolve_peer(*c, *d) == Some(dest) {
                            *sends.entry(*tag).or_insert(0) += 1;
                        }
                    }
                }
            }
            if sends.is_empty() {
                continue;
            }
            let mut recvs: BTreeMap<Tag, usize> = BTreeMap::new();
            let mut any = 0usize;
            for op in &model.ops[dest] {
                if let TraceOp::Irecv { comm: c, tag, .. } = op {
                    if *c != comm {
                        continue;
                    }
                    if *tag == ANY_TAG {
                        any += 1;
                    } else {
                        *recvs.entry(*tag).or_insert(0) += 1;
                    }
                }
            }
            let surplus: usize = sends
                .iter()
                .map(|(t, n)| n.saturating_sub(recvs.get(t).copied().unwrap_or(0)))
                .sum();
            if surplus > any {
                let where_ = if comm == WORLD {
                    String::new()
                } else {
                    format!(" on comm {comm}")
                };
                out.push(Lint {
                    id: L003,
                    kind: "send-recv-imbalance",
                    severity: Severity::Warning,
                    ranks: vec![dest],
                    message: format!(
                        "{} message(s) sent to rank {dest}{where_} can never be received \
                         ({surplus} surplus vs {any} wildcard-tag receive(s))",
                        surplus - any
                    ),
                });
            }
        }
    }
}

/// L004 — blocking-style send to self (`Isend` to own rank immediately
/// followed by its `Wait`) with no matching receive posted beforehand:
/// under synchronous/unbuffered semantics the rank blocks forever.
fn self_send_deadlock(model: &TraceModel, out: &mut Vec<Lint>) {
    for (rank, ops) in model.ops.iter().enumerate() {
        for (i, op) in ops.iter().enumerate() {
            let TraceOp::Isend {
                comm, dest, tag, ..
            } = op
            else {
                continue;
            };
            if TraceModel::world_peer(*comm, *dest) != Some(rank) {
                continue;
            }
            let blocking = matches!(ops.get(i + 1), Some(TraceOp::Wait { .. }));
            let receive_posted = ops[..i].iter().any(|p| {
                matches!(p, TraceOp::Irecv { comm: WORLD, src, tag: rt }
                    if source_matches(*src, rank) && tag_matches(*rt, *tag))
            });
            if blocking && !receive_posted {
                out.push(Lint {
                    id: L004,
                    kind: "self-send-deadlock",
                    severity: Severity::Error,
                    ranks: vec![rank],
                    message: format!(
                        "rank {rank} blocking-sends to itself (tag {tag}) with no \
                         receive posted first — deadlocks without eager buffering"
                    ),
                });
            }
        }
    }
}

/// L005 — wildcard receive with an empty refined match set. The op-level
/// fixed point ([`passes::wildcard_op_candidates`]) starts from "every
/// rank with at least one tag-compatible send toward me" and removes only
/// candidates whose compatible sends are *necessarily* consumed by
/// receives posted earlier at the same rank (positional, per channel).
/// An empty set is therefore a proof: in no schedule can this receive
/// ever match — the rank is stuck. A wildcard that *matched* in the free
/// run can never reach the empty set (its observed sender's send survives
/// the sound simulation), so the lint is structurally free of false
/// positives on clean programs.
fn stuck_wildcard_receive(model: &TraceModel, out: &mut Vec<Lint>) {
    for ((rank, pos), set) in passes::wildcard_op_candidates(model) {
        if !set.is_empty() {
            continue;
        }
        let TraceOp::Irecv { tag, .. } = model.ops[rank][pos] else {
            continue;
        };
        let spec = if tag == ANY_TAG {
            "ANY_TAG".to_string()
        } else {
            format!("tag {tag}")
        };
        out.push(Lint {
            id: L005,
            kind: "stuck-wildcard-receive",
            severity: Severity::Error,
            ranks: vec![rank],
            message: format!(
                "wildcard receive (op #{pos}, {spec}) on rank {rank} has an empty \
                 refined match set — no compatible send can ever reach it"
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_mpi::trace::TraceEvent;
    use dampi_mpi::ANY_SOURCE;

    fn ev(rank: usize, seq: u64, op: TraceOp) -> TraceEvent {
        TraceEvent {
            rank,
            seq,
            vt: 0.0,
            op,
        }
    }

    fn coll(comm: u32, name: &'static str) -> TraceOp {
        TraceOp::Collective {
            comm,
            name: name.into(),
        }
    }

    fn lint_ids(model: &TraceModel) -> Vec<&'static str> {
        run_lints(model).iter().map(|l| l.id).collect()
    }

    #[test]
    fn mismatched_collective_names_fire_l001() {
        let events = vec![ev(0, 0, coll(0, "barrier")), ev(1, 0, coll(0, "bcast"))];
        let m = TraceModel::build(2, &events, &[]);
        assert_eq!(lint_ids(&m), vec![L001]);
    }

    #[test]
    fn shorter_finalized_rank_fires_l001() {
        let events = vec![
            ev(0, 0, coll(0, "barrier")),
            ev(0, 1, coll(0, "barrier")),
            ev(1, 0, coll(0, "barrier")),
            ev(1, 1, TraceOp::Finalize),
        ];
        let m = TraceModel::build(2, &events, &[]);
        assert_eq!(lint_ids(&m), vec![L001]);
    }

    #[test]
    fn equal_collective_sequences_are_clean() {
        let events = vec![
            ev(0, 0, coll(0, "barrier")),
            ev(0, 1, coll(0, "bcast")),
            ev(1, 0, coll(0, "barrier")),
            ev(1, 1, coll(0, "bcast")),
        ];
        let m = TraceModel::build(2, &events, &[]);
        assert!(run_lints(&m).is_empty());
    }

    #[test]
    fn unwaited_request_fires_l002_only() {
        // Rank 0 sends-and-waits; rank 1 posts the receive but never
        // waits: the message is consumed (no imbalance), the handle leaks.
        let events = vec![
            ev(
                0,
                0,
                TraceOp::Isend {
                    comm: 0,
                    dest: 1,
                    tag: 4,
                    bytes: 1,
                    digest: 0,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Wait {
                    completed_source: 0,
                    tag: 4,
                },
            ),
            ev(
                1,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 0,
                    tag: 4,
                },
            ),
        ];
        let m = TraceModel::build(2, &events, &[]);
        assert_eq!(lint_ids(&m), vec![L002]);
    }

    #[test]
    fn incomplete_test_does_not_count_as_completion() {
        let events = vec![
            ev(
                0,
                0,
                TraceOp::Isend {
                    comm: 0,
                    dest: 0,
                    tag: 4,
                    bytes: 1,
                    digest: 0,
                },
            ),
            ev(0, 1, TraceOp::Test { completed: false }),
        ];
        let m = TraceModel::build(1, &events, &[]);
        assert!(lint_ids(&m).contains(&L002));
    }

    #[test]
    fn unreceivable_sends_fire_l003() {
        let events = vec![
            ev(
                0,
                0,
                TraceOp::Isend {
                    comm: 0,
                    dest: 1,
                    tag: 4,
                    bytes: 1,
                    digest: 0,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Wait {
                    completed_source: 0,
                    tag: 4,
                },
            ),
            ev(
                0,
                2,
                TraceOp::Isend {
                    comm: 0,
                    dest: 1,
                    tag: 4,
                    bytes: 1,
                    digest: 0,
                },
            ),
            ev(
                0,
                3,
                TraceOp::Wait {
                    completed_source: 0,
                    tag: 4,
                },
            ),
            ev(
                1,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 0,
                    tag: 4,
                },
            ),
            ev(
                1,
                1,
                TraceOp::Wait {
                    completed_source: 0,
                    tag: 4,
                },
            ),
        ];
        let m = TraceModel::build(2, &events, &[]);
        assert_eq!(lint_ids(&m), vec![L003]);
    }

    #[test]
    fn any_tag_receives_absorb_surplus() {
        let events = vec![
            ev(
                0,
                0,
                TraceOp::Isend {
                    comm: 0,
                    dest: 1,
                    tag: 4,
                    bytes: 1,
                    digest: 0,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Wait {
                    completed_source: 0,
                    tag: 4,
                },
            ),
            ev(
                1,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: ANY_TAG,
                },
            ),
            ev(
                1,
                1,
                TraceOp::Wait {
                    completed_source: 0,
                    tag: 4,
                },
            ),
        ];
        let m = TraceModel::build(2, &events, &[]);
        assert!(run_lints(&m).is_empty());
    }

    #[test]
    fn dup_comm_imbalance_fires_l003() {
        // comm 1 = dup of WORLD. Rank 0 sends twice on the dup; rank 1
        // posts a single receive there — one message is stranded even
        // though a WORLD-only channel view would see nothing sent at all.
        let wait = |rank, seq| {
            ev(
                rank,
                seq,
                TraceOp::Wait {
                    completed_source: 0,
                    tag: 4,
                },
            )
        };
        let events = vec![
            ev(
                0,
                0,
                TraceOp::CommDup {
                    parent: 0,
                    result: 1,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Isend {
                    comm: 1,
                    dest: 1,
                    tag: 4,
                    bytes: 1,
                    digest: 0,
                },
            ),
            wait(0, 2),
            ev(
                0,
                3,
                TraceOp::Isend {
                    comm: 1,
                    dest: 1,
                    tag: 4,
                    bytes: 1,
                    digest: 0,
                },
            ),
            wait(0, 4),
            ev(
                1,
                0,
                TraceOp::CommDup {
                    parent: 0,
                    result: 1,
                },
            ),
            ev(
                1,
                1,
                TraceOp::Irecv {
                    comm: 1,
                    src: 0,
                    tag: 4,
                },
            ),
            wait(1, 2),
        ];
        let m = TraceModel::build(2, &events, &[]);
        let lints = run_lints(&m);
        let l3: Vec<_> = lints.iter().filter(|l| l.id == L003).collect();
        assert_eq!(l3.len(), 1, "{lints:?}");
        assert_eq!(l3[0].ranks, vec![1]);
        assert!(l3[0].message.contains("on comm 1"), "{}", l3[0].message);
    }

    #[test]
    fn balanced_dup_comm_is_clean_of_l003() {
        let events = vec![
            ev(
                0,
                0,
                TraceOp::CommDup {
                    parent: 0,
                    result: 1,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Isend {
                    comm: 1,
                    dest: 1,
                    tag: 4,
                    bytes: 1,
                    digest: 0,
                },
            ),
            ev(
                0,
                2,
                TraceOp::Wait {
                    completed_source: 0,
                    tag: 4,
                },
            ),
            ev(
                1,
                0,
                TraceOp::CommDup {
                    parent: 0,
                    result: 1,
                },
            ),
            ev(
                1,
                1,
                TraceOp::Irecv {
                    comm: 1,
                    src: 0,
                    tag: 4,
                },
            ),
            ev(
                1,
                2,
                TraceOp::Wait {
                    completed_source: 0,
                    tag: 4,
                },
            ),
        ];
        let m = TraceModel::build(2, &events, &[]);
        assert!(run_lints(&m).is_empty());
    }

    #[test]
    fn split_comm_relative_dest_decodes_to_world_rank() {
        // Ranks 1 and 2 split into comm 1 (keys = world rank, so comm
        // order is [1, 2]); rank 0 opts out. Rank 1 sends twice to comm
        // rank 1 — world rank 2 — which posts only one receive.
        let split = |rank, seq, key, result: Option<u32>| {
            ev(
                rank,
                seq,
                TraceOp::CommSplit {
                    parent: 0,
                    color: if result == Some(1) { 0 } else { -1 },
                    member: result.is_some(),
                    key,
                    result,
                },
            )
        };
        let wait = |rank, seq| {
            ev(
                rank,
                seq,
                TraceOp::Wait {
                    completed_source: 0,
                    tag: 5,
                },
            )
        };
        let events = vec![
            split(0, 0, 0, None),
            split(1, 0, 1, Some(1)),
            ev(
                1,
                1,
                TraceOp::Isend {
                    comm: 1,
                    dest: 1,
                    tag: 5,
                    bytes: 1,
                    digest: 0,
                },
            ),
            wait(1, 2),
            ev(
                1,
                3,
                TraceOp::Isend {
                    comm: 1,
                    dest: 1,
                    tag: 5,
                    bytes: 1,
                    digest: 0,
                },
            ),
            wait(1, 4),
            split(2, 0, 2, Some(1)),
            ev(
                2,
                1,
                TraceOp::Irecv {
                    comm: 1,
                    src: 0,
                    tag: 5,
                },
            ),
            wait(2, 2),
        ];
        let m = TraceModel::build(3, &events, &[]);
        assert_eq!(m.comms[&1], vec![1, 2]);
        let lints = run_lints(&m);
        let l3: Vec<_> = lints.iter().filter(|l| l.id == L003).collect();
        assert_eq!(l3.len(), 1, "{lints:?}");
        assert_eq!(l3[0].ranks, vec![2], "comm rank 1 is world rank 2");
    }

    #[test]
    fn blocking_self_send_fires_l004() {
        let events = vec![
            ev(
                0,
                0,
                TraceOp::Isend {
                    comm: 0,
                    dest: 0,
                    tag: 9,
                    bytes: 1,
                    digest: 0,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Wait {
                    completed_source: 0,
                    tag: 9,
                },
            ),
        ];
        let m = TraceModel::build(1, &events, &[]);
        let lints = run_lints(&m);
        assert!(lints.iter().any(|l| l.id == L004), "{lints:?}");
        assert!(lints
            .iter()
            .all(|l| l.id != L004 || l.severity == Severity::Error));
    }

    #[test]
    fn self_send_with_receive_posted_first_is_clean_of_l004() {
        let events = vec![
            ev(
                0,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 0,
                    tag: 9,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Isend {
                    comm: 0,
                    dest: 0,
                    tag: 9,
                    bytes: 1,
                    digest: 0,
                },
            ),
            ev(
                0,
                2,
                TraceOp::Wait {
                    completed_source: 0,
                    tag: 9,
                },
            ),
            ev(
                0,
                3,
                TraceOp::Wait {
                    completed_source: 0,
                    tag: 9,
                },
            ),
        ];
        let m = TraceModel::build(1, &events, &[]);
        assert!(!lint_ids(&m).contains(&L004));
    }

    #[test]
    fn stuck_wildcard_fires_l005() {
        // Nobody ever sends tag 9 to rank 0: the wildcard's refined
        // candidate set is empty on every schedule.
        let events = vec![
            ev(
                1,
                0,
                TraceOp::Isend {
                    comm: 0,
                    dest: 2,
                    tag: 8,
                    bytes: 1,
                    digest: 0,
                },
            ),
            ev(
                2,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 1,
                    tag: 8,
                },
            ),
            ev(
                0,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 9,
                },
            ),
        ];
        let m = TraceModel::build(3, &events, &[]);
        let lints = run_lints(&m);
        let l5: Vec<_> = lints.iter().filter(|l| l.id == L005).collect();
        assert_eq!(l5.len(), 1, "{lints:?}");
        assert_eq!(l5[0].severity, Severity::Error);
        assert_eq!(l5[0].ranks, vec![0]);
        assert!(l5[0].message.contains("tag 9"), "{}", l5[0].message);
    }

    #[test]
    fn matchable_wildcard_is_clean_of_l005() {
        let events = vec![
            ev(
                1,
                0,
                TraceOp::Isend {
                    comm: 0,
                    dest: 0,
                    tag: 9,
                    bytes: 1,
                    digest: 0,
                },
            ),
            ev(
                0,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 9,
                },
            ),
        ];
        let m = TraceModel::build(2, &events, &[]);
        assert!(!lint_ids(&m).contains(&L005));
    }
}
