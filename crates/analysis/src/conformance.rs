//! Protocol conformance: validate each rank's traced free run against the
//! projection of a session-typed protocol spec, and harvest pruning facts
//! from protocol states that pin a wildcard receive down.
//!
//! The walk is a subset simulation of the rank's local-type NFA
//! ([`crate::session::Nfa`]) over the rank's WORLD-communicator trace ops
//! (`Isend`/`Irecv`/`Collective`/`Finalize`; completion, probe, and
//! communicator-management ops carry no protocol content and are skipped,
//! as is all derived-communicator traffic — the spec language speaks
//! world ranks). Three lints, one per failure shape, at most one per rank
//! (the walk stops at the first violation):
//!
//! - **L006** `protocol-order` — the rank performed an action the
//!   protocol state does not admit at all (wrong tag, wrong direction,
//!   wrong collective, or an action past the protocol's end).
//! - **L007** `protocol-peer` — the action's *shape* (kind + tag) is
//!   admitted but the observed peer is not: a named receive from a
//!   forbidden rank, a send to a forbidden destination, or a wildcard
//!   receive whose *matched* sender the protocol state excludes.
//! - **L008** `protocol-incomplete` — the rank called `Finalize` while
//!   the protocol still required actions from it. A trace that merely
//!   *ends* without `Finalize` (crash/deadlock truncation) is reported as
//!   a note, not a lint: the rank didn't claim to be done.
//!
//! **Pruning facts.** At a wildcard receive the protocol state admits a
//! set of sender ranks (the union of `from`-sets over tag-compatible
//! receive edges). When that set is a singleton the wildcard cannot
//! branch (`protocol_deterministic`); any recorded alternate outside the
//! set is protocol-refuted (`protocol_infeasible`). Facts are emitted
//! only when **every** rank's walk was fully conformant — a single
//! violation means the spec does not describe this program and nothing
//! may be pruned from it (DESIGN.md §16).

use std::collections::BTreeSet;

use dampi_mpi::trace::TraceOp;
use dampi_mpi::{Tag, ANY_SOURCE, ANY_TAG};

use crate::lints::{Lint, Severity};
use crate::model::{TraceModel, WORLD};
use crate::session::{collective_matches, Nfa, ProtocolSpec, Sym};

/// `L006`: an action the protocol state does not admit (wrong order).
pub const L006: &str = "L006";
/// `L007`: right action shape, forbidden peer.
pub const L007: &str = "L007";
/// `L008`: `Finalize` while the protocol still required actions.
pub const L008: &str = "L008";

/// Where a rank's conformance walk ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankStatus {
    /// The whole trace conformed (and ended in an accepting state or
    /// never claimed to finish).
    Conformant,
    /// Stopped at an L006 protocol-order violation.
    OrderViolation,
    /// Stopped at an L007 unexpected-peer violation.
    PeerViolation,
    /// Finalized with the protocol incomplete (L008).
    Incomplete,
    /// The trace ended without `Finalize` in a non-accepting state —
    /// truncation, not an honest early exit; no lint.
    Truncated,
}

impl RankStatus {
    /// Stable lowercase label used in JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RankStatus::Conformant => "conformant",
            RankStatus::OrderViolation => "order-violation",
            RankStatus::PeerViolation => "peer-violation",
            RankStatus::Incomplete => "incomplete",
            RankStatus::Truncated => "truncated",
        }
    }
}

/// Pruning facts the conformance walk proved, keyed exactly like the
/// [`dampi_core::prune::PrunePlan`] v3 sections they feed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtocolFacts {
    /// `(rank, clock)` of wildcard epochs whose protocol sender set is a
    /// singleton.
    pub deterministic: BTreeSet<(usize, u64)>,
    /// `(rank, clock, alternate)` recorded alternates the protocol state
    /// excludes.
    pub infeasible: BTreeSet<(usize, u64, usize)>,
}

/// The result of checking one traced run against one protocol spec.
#[derive(Debug)]
pub struct Conformance {
    /// Display name of the spec.
    pub spec_name: String,
    /// FNV-1a digest of the spec source.
    pub spec_digest: u64,
    /// Per-rank walk outcome.
    pub rank_status: Vec<RankStatus>,
    /// L006/L007/L008 findings (at most one per rank).
    pub lints: Vec<Lint>,
    /// Pruning facts — empty unless every rank is conformant.
    pub facts: ProtocolFacts,
    /// Caveats (truncated ranks, unmapped wildcard epochs).
    pub notes: Vec<String>,
}

impl Conformance {
    /// True when every rank's walk was fully conformant.
    #[must_use]
    pub fn all_conformant(&self) -> bool {
        self.rank_status
            .iter()
            .all(|s| *s == RankStatus::Conformant)
    }

    /// Count of findings with the given lint ID.
    #[must_use]
    pub fn count(&self, id: &str) -> usize {
        self.lints.iter().filter(|l| l.id == id).count()
    }
}

fn tag_ok(posted: Tag, edge: Tag) -> bool {
    posted == ANY_TAG || posted == edge
}

fn describe_expected(nfa: &Nfa, states: &BTreeSet<usize>) -> String {
    let expected = nfa.expected(states);
    if expected.is_empty() {
        "protocol end".to_string()
    } else {
        expected
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

/// Check `model` against `spec`. Fails only when the spec itself cannot
/// be instantiated at the model's world size.
pub fn check(spec: &ProtocolSpec, model: &TraceModel) -> Result<Conformance, String> {
    let global = spec.instantiate(model.nprocs)?;
    let mut out = Conformance {
        spec_name: spec.name.clone(),
        spec_digest: spec.digest(),
        rank_status: Vec::with_capacity(model.nprocs),
        lints: Vec::new(),
        facts: ProtocolFacts::default(),
        notes: Vec::new(),
    };
    let mut facts = ProtocolFacts::default();
    for rank in 0..model.nprocs {
        let nfa = Nfa::compile(&global.project(rank));
        let status = walk_rank(spec, model, rank, &nfa, &mut out, &mut facts);
        out.rank_status.push(status);
    }
    if out.rank_status.iter().all(|s| *s == RankStatus::Conformant) {
        out.facts = facts;
    }
    Ok(out)
}

fn walk_rank(
    spec: &ProtocolSpec,
    model: &TraceModel,
    rank: usize,
    nfa: &Nfa,
    out: &mut Conformance,
    facts: &mut ProtocolFacts,
) -> RankStatus {
    let mut states = nfa.initial();
    let mut rank_facts = ProtocolFacts::default();
    let mut finalized = false;
    for (pos, op) in model.ops[rank].iter().enumerate() {
        let expected = || describe_expected(nfa, &states);
        match op {
            TraceOp::Isend {
                comm, dest, tag, ..
            } => {
                let Some(dest) = TraceModel::world_peer(*comm, *dest) else {
                    continue; // derived-comm traffic is out of scope
                };
                let next = states.clone();
                let next = nfa.step(
                    &next,
                    |s| matches!(s, Sym::Send { to, tag: t } if *t == *tag && to.contains(&dest)),
                );
                if next.is_empty() {
                    let shape_ok = !nfa
                        .step(
                            &states,
                            |s| matches!(s, Sym::Send { tag: t, .. } if *t == *tag),
                        )
                        .is_empty();
                    if shape_ok {
                        out.lints.push(Lint {
                            id: L007,
                            kind: "protocol-peer",
                            severity: Severity::Error,
                            ranks: vec![rank],
                            message: format!(
                                "rank {rank} op #{pos}: send(tag {tag}) to rank {dest} — the \
                                 protocol admits this send but not to that peer (expected {})",
                                expected()
                            ),
                        });
                        return RankStatus::PeerViolation;
                    }
                    out.lints.push(Lint {
                        id: L006,
                        kind: "protocol-order",
                        severity: Severity::Error,
                        ranks: vec![rank],
                        message: format!(
                            "rank {rank} op #{pos}: send(tag {tag} -> {dest}) is not admitted \
                             by the protocol state (expected {})",
                            expected()
                        ),
                    });
                    return RankStatus::OrderViolation;
                }
                states = next;
            }
            TraceOp::Irecv { comm, src, tag } if *comm == WORLD => {
                // The protocol's sender set for this receive: union of
                // `from`-sets over tag-compatible receive edges.
                let mut allowed: BTreeSet<usize> = BTreeSet::new();
                for sym in nfa.expected(&states) {
                    if let Sym::Recv { from, tag: t } = sym {
                        if tag_ok(*tag, *t) {
                            allowed.extend(from.iter().copied());
                        }
                    }
                }
                if allowed.is_empty() {
                    out.lints.push(Lint {
                        id: L006,
                        kind: "protocol-order",
                        severity: Severity::Error,
                        ranks: vec![rank],
                        message: format!(
                            "rank {rank} op #{pos}: receive ({}) is not admitted by the \
                             protocol state (expected {})",
                            if *tag == ANY_TAG {
                                "ANY_TAG".to_string()
                            } else {
                                format!("tag {tag}")
                            },
                            expected()
                        ),
                    });
                    return RankStatus::OrderViolation;
                }
                if *src == ANY_SOURCE {
                    // Wildcard: the traced run tells us who actually
                    // matched; the protocol tells us who was allowed.
                    let matched = model.epoch_at[rank]
                        .get(&pos)
                        .and_then(|&ei| model.epochs[ei].matched_src);
                    if let Some(m) = matched {
                        if !allowed.contains(&m) {
                            out.lints.push(Lint {
                                id: L007,
                                kind: "protocol-peer",
                                severity: Severity::Error,
                                ranks: vec![rank],
                                message: format!(
                                    "rank {rank} op #{pos}: wildcard receive matched rank {m} \
                                     but the protocol state only admits {:?}",
                                    allowed.iter().collect::<Vec<_>>()
                                ),
                            });
                            return RankStatus::PeerViolation;
                        }
                        let ei = model.epoch_at[rank][&pos];
                        let epoch = &model.epochs[ei];
                        if allowed.len() == 1 {
                            rank_facts.deterministic.insert((rank, epoch.clock));
                        }
                        for alt in epoch.unexplored_alternates() {
                            if !allowed.contains(&alt) {
                                rank_facts.infeasible.insert((rank, epoch.clock, alt));
                            }
                        }
                        states = nfa.step(&states, |s| {
                            matches!(s, Sym::Recv { from, tag: t }
                                if tag_ok(*tag, *t) && from.contains(&m))
                        });
                    } else {
                        // Unmapped epoch (truncated run): advance over
                        // every compatible edge, claim nothing.
                        out.notes.push(format!(
                            "rank {rank} op #{pos}: wildcard receive has no aligned epoch — \
                             conformance advanced without a matched sender"
                        ));
                        states = nfa.step(
                            &states,
                            |s| matches!(s, Sym::Recv { tag: t, .. } if tag_ok(*tag, *t)),
                        );
                    }
                } else {
                    let Some(src) = TraceModel::world_peer(*comm, *src) else {
                        continue;
                    };
                    if !allowed.contains(&src) {
                        out.lints.push(Lint {
                            id: L007,
                            kind: "protocol-peer",
                            severity: Severity::Error,
                            ranks: vec![rank],
                            message: format!(
                                "rank {rank} op #{pos}: receive from rank {src} — the protocol \
                                 state only admits {:?}",
                                allowed.iter().collect::<Vec<_>>()
                            ),
                        });
                        return RankStatus::PeerViolation;
                    }
                    states = nfa.step(&states, |s| {
                        matches!(s, Sym::Recv { from, tag: t }
                            if tag_ok(*tag, *t) && from.contains(&src))
                    });
                }
                debug_assert!(!states.is_empty(), "admitted receive must step");
            }
            TraceOp::Collective { comm, name } if *comm == WORLD => {
                if spec.skip_collectives {
                    continue;
                }
                let next = nfa.step(
                    &states,
                    |s| matches!(s, Sym::Collective(n) if collective_matches(n, name.as_ref())),
                );
                if next.is_empty() {
                    out.lints.push(Lint {
                        id: L006,
                        kind: "protocol-order",
                        severity: Severity::Error,
                        ranks: vec![rank],
                        message: format!(
                            "rank {rank} op #{pos}: collective `{name}` is not admitted by \
                             the protocol state (expected {})",
                            expected()
                        ),
                    });
                    return RankStatus::OrderViolation;
                }
                states = next;
            }
            TraceOp::Finalize => {
                finalized = true;
                if !nfa.accepting(&states) {
                    out.lints.push(Lint {
                        id: L008,
                        kind: "protocol-incomplete",
                        severity: Severity::Error,
                        ranks: vec![rank],
                        message: format!(
                            "rank {rank} finalized with the protocol incomplete — still \
                             expected {}",
                            describe_expected(nfa, &states)
                        ),
                    });
                    return RankStatus::Incomplete;
                }
                break;
            }
            _ => {}
        }
    }
    if !finalized && !nfa.accepting(&states) {
        out.notes.push(format!(
            "rank {rank}: trace ended without Finalize before the protocol completed \
             (truncation, not an early exit) — still expected {}",
            describe_expected(nfa, &states)
        ));
        return RankStatus::Truncated;
    }
    facts.deterministic.extend(rank_facts.deterministic);
    facts.infeasible.extend(rank_facts.infeasible);
    RankStatus::Conformant
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_clocks::ClockStamp;
    use dampi_core::epoch::{EpochRecord, NdKind};
    use dampi_mpi::trace::TraceEvent;
    use dampi_mpi::Comm;

    const SPEC: &str = "
        protocol demo
        role coord = 0
        role left = 1
        role right = 2
        role worker = {1, 2}
        msg coord -> left : 10
        msg coord -> right : 11
        repeat 2 { msg any worker -> coord : 12 }
    ";

    fn ev(rank: usize, seq: u64, op: TraceOp) -> TraceEvent {
        TraceEvent {
            rank,
            seq,
            vt: 0.0,
            op,
        }
    }

    fn isend(comm: u32, dest: i32, tag: Tag) -> TraceOp {
        TraceOp::Isend {
            comm,
            dest,
            tag,
            bytes: 1,
            digest: 0,
        }
    }

    fn epoch(rank: usize, clock: u64, matched: usize, alts: &[usize]) -> EpochRecord {
        EpochRecord {
            rank,
            clock,
            stamp: ClockStamp::Lamport(clock),
            comm: Comm::WORLD,
            tag_spec: 12,
            kind: NdKind::Recv,
            in_region: false,
            guided: false,
            matched_src: Some(matched),
            alternates: alts.iter().copied().collect(),
        }
    }

    /// Coordinator trace: send (1,10), send (2,11), two wildcard recvs,
    /// finalize. Workers: recv from 0, send (0,12), finalize.
    fn clean_events() -> Vec<TraceEvent> {
        vec![
            ev(0, 0, isend(0, 1, 10)),
            ev(0, 1, isend(0, 2, 11)),
            ev(
                0,
                2,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 12,
                },
            ),
            ev(
                0,
                3,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 12,
                },
            ),
            ev(0, 4, TraceOp::Finalize),
            ev(
                1,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 0,
                    tag: 10,
                },
            ),
            ev(1, 1, isend(0, 0, 12)),
            ev(1, 2, TraceOp::Finalize),
            ev(
                2,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 0,
                    tag: 11,
                },
            ),
            ev(2, 1, isend(0, 0, 12)),
            ev(2, 2, TraceOp::Finalize),
        ]
    }

    fn check_events(
        spec: &str,
        nprocs: usize,
        events: &[TraceEvent],
        epochs: &[EpochRecord],
    ) -> Conformance {
        let spec = ProtocolSpec::parse(spec).unwrap();
        let model = TraceModel::build(nprocs, events, epochs);
        check(&spec, &model).unwrap()
    }

    #[test]
    fn clean_trace_is_conformant_everywhere() {
        let epochs = vec![epoch(0, 1, 1, &[2]), epoch(0, 2, 2, &[])];
        let c = check_events(SPEC, 3, &clean_events(), &epochs);
        assert!(c.lints.is_empty(), "{:?}", c.lints);
        assert!(c.all_conformant());
        assert_eq!(c.spec_name, "demo");
    }

    #[test]
    fn out_of_order_send_fires_l006_once() {
        let mut events = clean_events();
        // Coordinator sends (2,11) before (1,10).
        events[0] = ev(0, 0, isend(0, 2, 11));
        events[1] = ev(0, 1, isend(0, 1, 10));
        let epochs = vec![epoch(0, 1, 1, &[]), epoch(0, 2, 2, &[])];
        let c = check_events(SPEC, 3, &events, &epochs);
        assert_eq!(c.count(L006), 1, "{:?}", c.lints);
        assert_eq!(c.count(L007), 0);
        assert_eq!(c.rank_status[0], RankStatus::OrderViolation);
        assert!(c.facts.deterministic.is_empty(), "facts must be gated");
    }

    #[test]
    fn wrong_peer_send_fires_l007() {
        let mut events = clean_events();
        // First send goes to rank 2 with tag 10: right shape, wrong peer.
        events[0] = ev(0, 0, isend(0, 2, 10));
        // Rank 2's trace must also change or it would fire its own lint;
        // keep only rank 0's walk interesting by checking the first lint.
        let epochs = vec![epoch(0, 1, 1, &[]), epoch(0, 2, 2, &[])];
        let c = check_events(SPEC, 3, &events, &epochs);
        assert_eq!(c.rank_status[0], RankStatus::PeerViolation);
        assert!(c.lints.iter().any(|l| l.id == L007 && l.ranks == vec![0]));
    }

    #[test]
    fn named_recv_from_forbidden_rank_fires_l007() {
        let c = check_events(
            "role a = 0 role b = 1 role c = 2 msg a -> c : 7",
            3,
            &[
                ev(0, 0, isend(0, 2, 7)),
                ev(0, 1, TraceOp::Finalize),
                ev(
                    2,
                    0,
                    TraceOp::Irecv {
                        comm: 0,
                        src: 1,
                        tag: 7,
                    },
                ),
                ev(2, 1, TraceOp::Finalize),
            ],
            &[],
        );
        assert_eq!(c.rank_status[2], RankStatus::PeerViolation);
        assert_eq!(c.count(L007), 1, "{:?}", c.lints);
    }

    #[test]
    fn wildcard_matching_forbidden_sender_fires_l007() {
        // Protocol says only worker ranks send tag 12, but the epoch log
        // shows the wildcard matched rank 2 at a point where only rank 1
        // remains admissible.
        let spec = "
            role coord = 0
            role left = 1
            role right = 2
            msg left -> coord : 12
            msg right -> coord : 12
        ";
        let events = vec![
            ev(
                0,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 12,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 12,
                },
            ),
            ev(0, 2, TraceOp::Finalize),
            ev(1, 0, isend(0, 0, 12)),
            ev(1, 1, TraceOp::Finalize),
            ev(2, 0, isend(0, 0, 12)),
            ev(2, 1, TraceOp::Finalize),
        ];
        // First wildcard matched 1 (fine: spec is sequential, only left
        // admissible first), second also "matched" 1 — forbidden, the
        // protocol already consumed left's message.
        let epochs = vec![epoch(0, 1, 1, &[2]), epoch(0, 2, 1, &[])];
        let c = check_events(spec, 3, &events, &epochs);
        assert_eq!(c.rank_status[0], RankStatus::PeerViolation);
        assert_eq!(c.count(L007), 1, "{:?}", c.lints);
    }

    #[test]
    fn early_finalize_fires_l008_but_truncation_does_not() {
        // Rank 1 finalizes without sending its mandatory message... but
        // with `any worker` sends being optional we need a mandatory op:
        // drop rank 1's named receive instead.
        let spec = "role a = 0 role b = 1 msg a -> b : 7";
        let finalize_early = vec![
            ev(0, 0, isend(0, 1, 7)),
            ev(0, 1, TraceOp::Finalize),
            ev(1, 0, TraceOp::Finalize),
        ];
        let c = check_events(spec, 2, &finalize_early, &[]);
        assert_eq!(c.rank_status[1], RankStatus::Incomplete);
        assert_eq!(c.count(L008), 1, "{:?}", c.lints);

        let truncated = vec![ev(0, 0, isend(0, 1, 7)), ev(0, 1, TraceOp::Finalize)];
        let c = check_events(spec, 2, &truncated, &[]);
        assert_eq!(c.rank_status[1], RankStatus::Truncated);
        assert!(c.lints.is_empty(), "{:?}", c.lints);
        assert!(!c.notes.is_empty());
        assert!(c.facts.deterministic.is_empty(), "truncation gates facts");
    }

    #[test]
    fn singleton_sender_set_yields_protocol_facts() {
        // Two stages in protocol order: stage1 (rank 1) then stage2
        // (rank 2), both tag 7 into rank 0's wildcards. At the first
        // wildcard only rank 1 is admissible → deterministic + the
        // recorded alternate 2 is infeasible.
        let spec = "
            role sink = 0
            role stage1 = 1
            role stage2 = 2
            msg stage1 -> sink : 7
            msg stage2 -> sink : 7
        ";
        let events = vec![
            ev(
                0,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 7,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 7,
                },
            ),
            ev(0, 2, TraceOp::Finalize),
            ev(1, 0, isend(0, 0, 7)),
            ev(1, 1, TraceOp::Finalize),
            ev(2, 0, isend(0, 0, 7)),
            ev(2, 1, TraceOp::Finalize),
        ];
        let epochs = vec![epoch(0, 1, 1, &[2]), epoch(0, 2, 2, &[])];
        let c = check_events(spec, 3, &events, &epochs);
        assert!(c.all_conformant(), "{:?}", c.lints);
        assert_eq!(c.facts.deterministic, BTreeSet::from([(0, 1), (0, 2)]));
        assert_eq!(c.facts.infeasible, BTreeSet::from([(0, 1, 2)]));
    }

    #[test]
    fn violation_on_one_rank_gates_all_facts() {
        let spec = "
            role sink = 0
            role stage1 = 1
            role stage2 = 2
            msg stage1 -> sink : 7
            msg stage2 -> sink : 7
        ";
        let events = vec![
            ev(
                0,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 7,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 7,
                },
            ),
            ev(0, 2, TraceOp::Finalize),
            ev(1, 0, isend(0, 0, 7)),
            ev(1, 1, TraceOp::Finalize),
            // Rank 2 sends a bogus extra tag before its protocol send.
            ev(2, 0, isend(0, 0, 99)),
            ev(2, 1, isend(0, 0, 7)),
            ev(2, 2, TraceOp::Finalize),
        ];
        let epochs = vec![epoch(0, 1, 1, &[2]), epoch(0, 2, 2, &[])];
        let c = check_events(spec, 3, &events, &epochs);
        assert_eq!(c.rank_status[2], RankStatus::OrderViolation);
        assert_eq!(c.facts, ProtocolFacts::default());
    }

    #[test]
    fn skip_collectives_ignores_barriers() {
        let spec = "skip collectives role a = 0 role b = 1 msg a -> b : 7";
        let events = vec![
            ev(
                0,
                0,
                TraceOp::Collective {
                    comm: 0,
                    name: "barrier".into(),
                },
            ),
            ev(0, 1, isend(0, 1, 7)),
            ev(0, 2, TraceOp::Finalize),
            ev(
                1,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 0,
                    tag: 7,
                },
            ),
            ev(
                1,
                1,
                TraceOp::Collective {
                    comm: 0,
                    name: "barrier".into(),
                },
            ),
            ev(1, 2, TraceOp::Finalize),
        ];
        let c = check_events(spec, 2, &events, &[]);
        assert!(c.all_conformant(), "{:?}", c.lints);
    }

    #[test]
    fn collective_out_of_order_fires_l006() {
        let spec = "role a = 0 role b = 1 collective barrier msg a -> b : 7";
        let events = vec![
            ev(0, 0, isend(0, 1, 7)), // barrier skipped entirely
            ev(0, 1, TraceOp::Finalize),
        ];
        let c = check_events(spec, 2, &events, &[]);
        assert_eq!(c.rank_status[0], RankStatus::OrderViolation);
        assert_eq!(c.count(L006), 1);
    }

    #[test]
    fn any_tag_posted_receive_matches_concrete_edges() {
        let spec = "role a = 0 role b = 1 msg a -> b : 7";
        let events = vec![
            ev(0, 0, isend(0, 1, 7)),
            ev(0, 1, TraceOp::Finalize),
            ev(
                1,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 0,
                    tag: ANY_TAG,
                },
            ),
            ev(1, 1, TraceOp::Finalize),
        ];
        let c = check_events(spec, 2, &events, &[]);
        assert!(c.all_conformant(), "{:?}", c.lints);
    }

    #[test]
    fn derived_comm_traffic_is_out_of_scope() {
        let spec = "role a = 0 role b = 1 msg a -> b : 7";
        let events = vec![
            ev(0, 0, isend(1, 9, 99)), // comm 1: ignored
            ev(0, 1, isend(0, 1, 7)),
            ev(0, 2, TraceOp::Finalize),
            ev(
                1,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 0,
                    tag: 7,
                },
            ),
            ev(1, 1, TraceOp::Finalize),
        ];
        let c = check_events(spec, 2, &events, &[]);
        assert!(c.all_conformant(), "{:?}", c.lints);
    }
}
