//! The pre-replay analysis passes.
//!
//! 1. **Deterministic wildcards** — an epoch whose over-approximated
//!    feasible sender set is a singleton can never branch; the scheduler
//!    counts (but need not visit) it.
//! 2. **Infeasible alternates** — a recorded alternate `(epoch, src)` that
//!    message-counting under MPI non-overtaking refutes is dropped from
//!    the root frontier before any replay is dispatched.
//! 3. **Rank symmetry orbits** — ranks whose traced behavior is
//!    indistinguishable (identical own op sequences, never named by each
//!    other, identical posted envelopes toward them from every third rank)
//!    are interchangeable; the scheduler keeps one representative per
//!    orbit among a fork's untried alternates.
//! 4. **Cross-epoch fixed-point refinement** ([`refine_match_sets`]) —
//!    iterates match sets to a fixed point with a *positional* per-channel
//!    simulation: each definite earlier consumer (a named receive or a
//!    deterministic/observed wildcard) takes the forced source's earliest
//!    unconsumed tag-compatible send, so refutations survive mixed-tag
//!    channels the count-based pass 2 must give up on, and each
//!    newly-deterministic wildcard's consumption propagates to later
//!    epochs on the next round.
//! 5. **Payload-oblivious symmetry** ([`rank_orbits_oblivious`]) — a
//!    conservative continuation-equivalence check licensing pass 3 to
//!    drop payload *content* digests from the envelopes third ranks post
//!    toward twin receivers, unlocking orbits on task-pool workers that
//!    receive distinct task payloads but provably never let the content
//!    steer their traced behavior.
//!
//! Every pass *over*-approximates feasibility (or proves symmetry), so
//! pruning can only drop replays whose outcome is already covered — see
//! DESIGN.md §11 and §12 for the soundness arguments.

use std::collections::{BTreeMap, BTreeSet};

use dampi_core::epoch::{EpochRecord, NdKind};
use dampi_core::prune::{PrunePlan, PRUNE_PLAN_VERSION};
use dampi_mpi::trace::TraceOp;
use dampi_mpi::types::tag_matches;
use dampi_mpi::{Tag, ANY_SOURCE, ANY_TAG};

use crate::model::{TraceModel, WORLD};

/// Over-approximated feasible sender set per epoch, keyed `(rank, clock)`.
/// `None` means the set could not be bounded (non-WORLD communicator or
/// unmapped epoch) — such epochs are never declared deterministic.
pub type MatchSets = BTreeMap<(usize, u64), Option<BTreeSet<usize>>>;

/// Compute the over-approximated match set of every epoch: all world
/// ranks with at least one `WORLD` send toward the epoch's rank whose tag
/// the epoch's tag specifier accepts. Sound because the runtime can only
/// ever match (or record as alternate) a sender that actually sent a
/// compatible message.
#[must_use]
pub fn match_sets(model: &TraceModel) -> MatchSets {
    // senders[r] = tags sent to world rank r, per source rank.
    let mut senders: Vec<BTreeMap<usize, Vec<Tag>>> = vec![BTreeMap::new(); model.nprocs];
    for (src, ops) in model.ops.iter().enumerate() {
        for op in ops {
            if let TraceOp::Isend {
                comm, dest, tag, ..
            } = op
            {
                if let Some(d) = TraceModel::world_peer(*comm, *dest) {
                    if d < model.nprocs {
                        senders[d].entry(src).or_default().push(*tag);
                    }
                }
            }
        }
    }
    model
        .epochs
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let key = (e.rank, e.clock);
            if e.comm.0 != WORLD || model.epoch_pos[i].is_none() || e.rank >= model.nprocs {
                return (key, None);
            }
            let set: BTreeSet<usize> = senders[e.rank]
                .iter()
                .filter(|(_, tags)| tags.iter().any(|t| tag_matches(e.tag_spec, *t)))
                .map(|(&s, _)| s)
                .collect();
            // Guard: the over-approximation must cover everything the
            // runtime observed; a violation means the model is misaligned
            // and the epoch must stay unknown.
            let observed: BTreeSet<usize> = e
                .matched_src
                .iter()
                .chain(e.alternates.iter())
                .copied()
                .collect();
            if observed.is_subset(&set) {
                (key, Some(set))
            } else {
                (key, None)
            }
        })
        .collect()
}

/// Epochs whose feasible sender set is a singleton: the wildcard is
/// deterministic and can never open a branch.
#[must_use]
pub fn deterministic_wildcards(sets: &MatchSets) -> BTreeSet<(usize, u64)> {
    sets.iter()
        .filter(|(_, s)| s.as_ref().is_some_and(|s| s.len() == 1))
        .map(|(&k, _)| k)
        .collect()
}

/// Necessarily-compatible claim test: does a receive posted with tag
/// specifier `spec` (consuming from sender `s`) always consume a message
/// the epoch's tag specifier `epoch_spec` also accepts? `s_tags` are the
/// tags of every `s → epoch.rank` WORLD send.
fn claims_compatible(spec: Tag, epoch_spec: Tag, s_tags: &[Tag]) -> bool {
    if spec == ANY_TAG {
        !s_tags.is_empty() && s_tags.iter().all(|t| tag_matches(epoch_spec, *t))
    } else {
        s_tags.contains(&spec) && tag_matches(epoch_spec, spec)
    }
}

/// Refute recorded alternates by message counting under non-overtaking:
/// alternate `(e, s)` is infeasible when the receives rank `e.rank` posts
/// *before* `e` — named receives from `s` and earlier wildcard epochs
/// whose observed (prefix-forced) match was `s` — necessarily consume
/// every `e`-compatible send `s` made. The free run records a late send
/// as an alternate without checking channel order, so forcing such an
/// alternate can only diverge or deadlock; dropping it loses nothing.
///
/// Only `WORLD`-comm epochs of aligned ranks are considered; everything
/// else is conservatively kept.
#[must_use]
pub fn infeasible_alternates(model: &TraceModel) -> BTreeSet<(usize, u64, usize)> {
    let mut out = BTreeSet::new();
    for (i, e) in model.epochs.iter().enumerate() {
        let (Some(pos), true) = (model.epoch_pos[i], e.comm.0 == WORLD) else {
            continue;
        };
        for s in e.unexplored_alternates() {
            if s >= model.nprocs {
                continue;
            }
            // Tags of every WORLD send s → e.rank, and the subset e accepts.
            let s_tags: Vec<Tag> = model.ops[s]
                .iter()
                .filter_map(|op| match op {
                    TraceOp::Isend {
                        comm, dest, tag, ..
                    } if TraceModel::world_peer(*comm, *dest) == Some(e.rank) => Some(*tag),
                    _ => None,
                })
                .collect();
            let mut compat: BTreeMap<Tag, usize> = BTreeMap::new();
            for &t in &s_tags {
                if tag_matches(e.tag_spec, t) {
                    *compat.entry(t).or_insert(0) += 1;
                }
            }
            let n_compat: usize = compat.values().sum();

            // Earlier-posted receives at e.rank that *necessarily* consume
            // an e-compatible s-send: per concrete tag (capped by the
            // sends that exist) plus flexible ANY_TAG claims when every
            // s-send is e-compatible.
            let mut concrete: BTreeMap<Tag, usize> = BTreeMap::new();
            let mut flexible = 0usize;
            let all_compat = !s_tags.is_empty() && compat.values().sum::<usize>() == s_tags.len();
            let mut claim = |spec: Tag| {
                if spec == ANY_TAG {
                    if all_compat {
                        flexible += 1;
                    }
                } else if claims_compatible(spec, e.tag_spec, &s_tags) {
                    *concrete.entry(spec).or_insert(0) += 1;
                }
            };
            for (p, op) in model.ops[e.rank].iter().enumerate().take(pos) {
                match op {
                    TraceOp::Irecv { comm, src, tag } if *comm == WORLD => {
                        if *src == s as i32 {
                            claim(*tag);
                        } else if *src == ANY_SOURCE {
                            // An earlier epoch: under the forced prefix it
                            // consumes from its observed matched source.
                            let consumed_s = model.epoch_at[e.rank]
                                .get(&p)
                                .map(|&ei| &model.epochs[ei])
                                .is_some_and(|prev| {
                                    prev.kind == NdKind::Recv && prev.matched_src == Some(s)
                                });
                            if consumed_s {
                                claim(*tag);
                            }
                        }
                    }
                    _ => {}
                }
            }
            let claimed: usize = concrete
                .iter()
                .map(|(t, c)| (*c).min(compat.get(t).copied().unwrap_or(0)))
                .sum::<usize>()
                + flexible;
            if claimed >= n_compat {
                out.insert((e.rank, e.clock, s));
            }
        }
    }
    out
}

/// Output of the cross-epoch fixed-point refinement
/// ([`refine_match_sets`]).
#[derive(Debug)]
pub struct Refinement {
    /// Refined feasible sender set per epoch — pointwise a subset of the
    /// input sets (the pass only ever removes candidates).
    pub sets: MatchSets,
    /// Epochs whose set became a singleton only at the fixed point —
    /// disjoint from [`deterministic_wildcards`] of the input sets.
    pub newly_deterministic: BTreeSet<(usize, u64)>,
    /// Recorded alternates `(rank, clock, src)` the refinement refuted
    /// (superset of what pass 2 refutes on the same epochs; the plan
    /// assembler keeps only the delta).
    pub refuted_alternates: BTreeSet<(usize, u64, usize)>,
    /// Rounds until the fixed point, including the final no-change round.
    /// Bounded by `epochs + 2`: a round can only enable new refutations
    /// by making some set newly singleton, which happens at most once per
    /// epoch.
    pub iterations: usize,
}

/// Tags of every `WORLD` send `src → dest`, in `src`'s program order —
/// the channel stream MPI non-overtaking matches in order per compatible
/// tag.
fn channel_tags(model: &TraceModel, src: usize, dest: usize) -> Vec<Tag> {
    model.ops[src]
        .iter()
        .filter_map(|op| match op {
            TraceOp::Isend {
                comm, dest: d, tag, ..
            } if TraceModel::world_peer(*comm, *d) == Some(dest) => Some(*tag),
            _ => None,
        })
        .collect()
}

/// Positional channel simulation for one `(epoch, candidate)` pair: walk
/// the receives rank `e.rank` posts before `pos` in post order; every
/// *definite* consumer of `s`'s sends — a named receive from `s`, or an
/// earlier wildcard epoch whose observed match is `s` or whose current
/// refined set is the singleton `{s}` — takes `s`'s earliest unconsumed
/// tag-compatible send (MPI matches each channel in order). The candidate
/// survives iff an `e`-compatible send is left unconsumed.
///
/// Sound to *remove* on failure: every claim walked is one the runtime
/// must satisfy before `e` can match (non-overtaking gives earlier-posted
/// compatible receives priority), and the positional walk consumes
/// exactly the sends those receives are forced to take.
fn epoch_candidate_survives(
    model: &TraceModel,
    sets: &MatchSets,
    pos: usize,
    e: &EpochRecord,
    s: usize,
) -> bool {
    let sends = channel_tags(model, s, e.rank);
    let mut consumed = vec![false; sends.len()];
    let mut claim = |spec: Tag| {
        if let Some(j) = (0..sends.len()).find(|&j| !consumed[j] && tag_matches(spec, sends[j])) {
            consumed[j] = true;
        }
    };
    for (p, op) in model.ops[e.rank].iter().enumerate().take(pos) {
        let TraceOp::Irecv {
            comm: WORLD,
            src,
            tag,
        } = op
        else {
            continue;
        };
        if *src == s as i32 {
            claim(*tag);
        } else if *src == ANY_SOURCE {
            let definite = model.epoch_at[e.rank]
                .get(&p)
                .map(|&ei| &model.epochs[ei])
                .is_some_and(|prev| {
                    prev.kind == NdKind::Recv
                        && (prev.matched_src == Some(s)
                            || sets
                                .get(&(prev.rank, prev.clock))
                                .and_then(|x| x.as_ref())
                                .is_some_and(|set| set.len() == 1 && set.contains(&s)))
                });
            if definite {
                claim(*tag);
            }
        }
    }
    sends
        .iter()
        .zip(&consumed)
        .any(|(t, c)| !c && tag_matches(e.tag_spec, *t))
}

/// Iterate the match sets to a fixed point (pass 4). Each round filters
/// every bounded epoch's candidate set through the positional channel
/// simulation; a set shrinking to a singleton makes that epoch a definite
/// consumer for *later* epochs of its rank, which is what the next round
/// picks up. The observed match is never dropped — the free run proved it
/// feasible. Sets only ever shrink (monotone on the subset lattice), so
/// the iteration terminates; see the module docs for the `epochs + 2`
/// round bound.
#[must_use]
pub fn refine_match_sets(model: &TraceModel, base: &MatchSets) -> Refinement {
    let mut sets = base.clone();
    let cap = model.epochs.len() + 2;
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let mut changed = false;
        for (i, e) in model.epochs.iter().enumerate() {
            let (Some(pos), true) = (model.epoch_pos[i], e.comm.0 == WORLD) else {
                continue;
            };
            let key = (e.rank, e.clock);
            let Some(Some(cur)) = sets.get(&key).cloned() else {
                continue;
            };
            let kept: BTreeSet<usize> = cur
                .iter()
                .copied()
                .filter(|&s| {
                    e.matched_src == Some(s)
                        || (s < model.nprocs && epoch_candidate_survives(model, &sets, pos, e, s))
                })
                .collect();
            if kept.len() != cur.len() {
                sets.insert(key, Some(kept));
                changed = true;
            }
        }
        if !changed || iterations >= cap {
            break;
        }
    }
    let base_det = deterministic_wildcards(base);
    let newly_deterministic: BTreeSet<(usize, u64)> = deterministic_wildcards(&sets)
        .into_iter()
        .filter(|k| !base_det.contains(k))
        .collect();
    let mut refuted_alternates = BTreeSet::new();
    for e in &model.epochs {
        if let Some(Some(set)) = sets.get(&(e.rank, e.clock)) {
            for s in e.unexplored_alternates() {
                if !set.contains(&s) {
                    refuted_alternates.insert((e.rank, e.clock, s));
                }
            }
        }
    }
    Refinement {
        sets,
        newly_deterministic,
        refuted_alternates,
        iterations,
    }
}

/// Schedule-independent refined candidate sets for every wildcard receive
/// *op*, keyed `(rank, op index)` — the L005 lint's evidence base.
///
/// Unlike [`refine_match_sets`], which may use an epoch's *observed*
/// match (valid only for the root frontier of the analyzed schedule),
/// this fixed point admits only structural claims — named receives and
/// earlier wildcard ops whose candidate set is already a singleton — so
/// an empty result holds on *every* schedule, which is the standard the
/// lints promise.
#[must_use]
pub fn wildcard_op_candidates(model: &TraceModel) -> BTreeMap<(usize, usize), BTreeSet<usize>> {
    let mut cands: BTreeMap<(usize, usize), BTreeSet<usize>> = BTreeMap::new();
    for (rank, ops) in model.ops.iter().enumerate() {
        for (p, op) in ops.iter().enumerate() {
            let TraceOp::Irecv {
                comm: WORLD,
                src: ANY_SOURCE,
                tag,
            } = op
            else {
                continue;
            };
            let set: BTreeSet<usize> = (0..model.nprocs)
                .filter(|&s| {
                    channel_tags(model, s, rank)
                        .iter()
                        .any(|t| tag_matches(*tag, *t))
                })
                .collect();
            cands.insert((rank, p), set);
        }
    }
    let survives = |cands: &BTreeMap<(usize, usize), BTreeSet<usize>>,
                    rank: usize,
                    pos: usize,
                    spec: Tag,
                    s: usize|
     -> bool {
        let sends = channel_tags(model, s, rank);
        let mut consumed = vec![false; sends.len()];
        let mut claim = |claim_spec: Tag| {
            if let Some(j) =
                (0..sends.len()).find(|&j| !consumed[j] && tag_matches(claim_spec, sends[j]))
            {
                consumed[j] = true;
            }
        };
        for (p, op) in model.ops[rank].iter().enumerate().take(pos) {
            let TraceOp::Irecv {
                comm: WORLD,
                src,
                tag,
            } = op
            else {
                continue;
            };
            // A definite consumer of s's sends: a named receive from s, or
            // a wildcard whose current refined set is the singleton {s}.
            let named_from_s = *src == s as i32;
            let singleton_s = *src == ANY_SOURCE
                && cands
                    .get(&(rank, p))
                    .is_some_and(|set| set.len() == 1 && set.contains(&s));
            if named_from_s || singleton_s {
                claim(*tag);
            }
        }
        sends
            .iter()
            .zip(&consumed)
            .any(|(t, c)| !c && tag_matches(spec, *t))
    };
    let cap = cands.len() + 2;
    for _ in 0..cap {
        let mut changed = false;
        let keys: Vec<(usize, usize)> = cands.keys().copied().collect();
        for (rank, pos) in keys {
            let TraceOp::Irecv { tag, .. } = model.ops[rank][pos] else {
                continue;
            };
            let cur = cands[&(rank, pos)].clone();
            let kept: BTreeSet<usize> = cur
                .iter()
                .copied()
                .filter(|&s| survives(&cands, rank, pos, tag, s))
                .collect();
            if kept.len() != cur.len() {
                cands.insert((rank, pos), kept);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    cands
}

/// Normalized per-op signature used for symmetry detection. Fields that
/// are *schedule artifacts* (which source a wait completed with, whether
/// a test/iprobe hit) are dropped; everything the program *posted* is
/// kept verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum OpSig {
    Send {
        comm: u32,
        dest: i32,
        tag: Tag,
        bytes: usize,
        digest: u64,
    },
    Recv {
        comm: u32,
        src: i32,
        tag: Tag,
    },
    Wait,
    Test,
    Probe {
        comm: u32,
        src: i32,
        tag: Tag,
    },
    Collective {
        comm: u32,
        name: String,
    },
    CommDup {
        parent: u32,
        result: u32,
    },
    CommSplit {
        parent: u32,
        color: i64,
        member: bool,
    },
    CommFree {
        comm: u32,
    },
    Pcontrol {
        code: i32,
    },
    Finalize,
}

fn op_sig(op: &TraceOp) -> OpSig {
    match op {
        TraceOp::Isend {
            comm,
            dest,
            tag,
            bytes,
            digest,
        } => OpSig::Send {
            comm: *comm,
            dest: *dest,
            tag: *tag,
            bytes: *bytes,
            digest: *digest,
        },
        TraceOp::Irecv { comm, src, tag } => OpSig::Recv {
            comm: *comm,
            src: *src,
            tag: *tag,
        },
        TraceOp::Wait { .. } => OpSig::Wait,
        TraceOp::Test { .. } => OpSig::Test,
        TraceOp::Probe { comm, src, tag, .. } | TraceOp::Iprobe { comm, src, tag, .. } => {
            OpSig::Probe {
                comm: *comm,
                src: *src,
                tag: *tag,
            }
        }
        TraceOp::Collective { comm, name } => OpSig::Collective {
            comm: *comm,
            name: name.to_string(),
        },
        TraceOp::CommDup { parent, result } => OpSig::CommDup {
            parent: *parent,
            result: *result,
        },
        // `key` is deliberately left out of the signature: it is almost
        // always the caller's own rank, which would spuriously break
        // every symmetry orbit. `result` ids are global creation order,
        // identical across members, and already implied by (parent,
        // color) agreement.
        TraceOp::CommSplit {
            parent,
            color,
            member,
            ..
        } => OpSig::CommSplit {
            parent: *parent,
            color: *color,
            member: *member,
        },
        TraceOp::CommFree { comm } => OpSig::CommFree { comm: *comm },
        TraceOp::Pcontrol { code } => OpSig::Pcontrol { code: *code },
        TraceOp::Finalize => OpSig::Finalize,
    }
}

/// Posted envelope of rank `r`'s ops that name world rank `x` — the
/// "projection" every third rank must agree on for `x` to sit in an orbit.
fn projection(ops: &[TraceOp], x: usize) -> Vec<(u8, Tag, usize, u64)> {
    let xi = x as i32;
    ops.iter()
        .filter_map(|op| match op {
            TraceOp::Isend {
                comm: WORLD,
                dest,
                tag,
                bytes,
                digest,
            } if *dest == xi => Some((0, *tag, *bytes, *digest)),
            TraceOp::Irecv {
                comm: WORLD,
                src,
                tag,
            } if *src == xi => Some((1, *tag, 0, 0)),
            TraceOp::Probe {
                comm: WORLD,
                src,
                tag,
                ..
            }
            | TraceOp::Iprobe {
                comm: WORLD,
                src,
                tag,
                ..
            } if *src == xi => Some((2, *tag, 0, 0)),
            _ => None,
        })
        .collect()
}

/// True when `ops` name world rank `x` as a peer of any WORLD p2p op.
fn names(ops: &[TraceOp], x: usize) -> bool {
    !projection(ops, x).is_empty()
}

/// True when a rank posts a *named* p2p op on a derived communicator —
/// those peers use comm-relative numbering the trace cannot translate, so
/// the rank (and the whole pass, if any rank could be naming an orbit
/// candidate through such a comm) must stay conservative.
fn has_opaque_p2p(ops: &[TraceOp]) -> bool {
    ops.iter().any(|op| {
        matches!(op,
            TraceOp::Isend { comm, .. } if *comm != WORLD)
            || matches!(op,
                TraceOp::Irecv { comm, src, .. } if *comm != WORLD && *src != ANY_SOURCE)
            || matches!(op,
                TraceOp::Probe { comm, src, .. } if *comm != WORLD && *src != ANY_SOURCE)
            || matches!(op,
                TraceOp::Iprobe { comm, src, .. } if *comm != WORLD && *src != ANY_SOURCE)
    })
}

/// Partition ranks into symmetry orbits (groups of ≥2 interchangeable
/// ranks). Two ranks are interchangeable when their own traced op
/// sequences are identical, they never name each other, and every third
/// rank posts the same envelope sequence toward both. If *any* rank uses
/// named p2p on a derived communicator the pass returns no orbits — a
/// hidden reference to a candidate could not be seen.
#[must_use]
pub fn rank_orbits(model: &TraceModel) -> Vec<BTreeSet<usize>> {
    let n = model.nprocs;
    if n < 2 || model.ops.iter().any(|ops| has_opaque_p2p(ops)) {
        return Vec::new();
    }
    let sigs: Vec<Vec<OpSig>> = model
        .ops
        .iter()
        .map(|ops| ops.iter().map(op_sig).collect())
        .collect();
    let interchangeable = |a: usize, b: usize| -> bool {
        sigs[a] == sigs[b]
            && !names(&model.ops[a], a)
            && !names(&model.ops[a], b)
            && !names(&model.ops[b], a)
            && !names(&model.ops[b], b)
            && (0..n)
                .filter(|&r| r != a && r != b)
                .all(|r| projection(&model.ops[r], a) == projection(&model.ops[r], b))
    };
    let mut orbit = vec![usize::MAX; n];
    let mut orbits: Vec<BTreeSet<usize>> = Vec::new();
    for a in 0..n {
        if orbit[a] != usize::MAX {
            continue;
        }
        let mut group = BTreeSet::from([a]);
        for (b, &ob) in orbit.iter().enumerate().skip(a + 1) {
            if ob == usize::MAX && interchangeable(a, b) {
                group.insert(b);
            }
        }
        let id = orbits.len();
        for &r in &group {
            orbit[r] = id;
        }
        orbits.push(group);
    }
    orbits.retain(|g| g.len() >= 2);
    orbits
}

/// A projection entry with the payload digest dropped — the most a masked
/// receiver is allowed to observe about an incoming send: op kind, tag,
/// byte length.
fn masked(entries: &[(u8, Tag, usize, u64)]) -> Vec<(u8, Tag, usize)> {
    entries.iter().map(|&(k, t, b, _)| (k, t, b)).collect()
}

/// Guards licensing digest-masking toward a receiver: every receive and
/// probe is source-named (delivered content can never steer which message
/// *matches* next), and the trace runs to `Finalize` (a truncated trace
/// could hide content-dependent divergence past the cut).
fn maskable_receiver(ops: &[TraceOp]) -> bool {
    matches!(ops.last(), Some(TraceOp::Finalize))
        && !ops.iter().any(|op| {
            matches!(
                op,
                TraceOp::Irecv {
                    src: ANY_SOURCE,
                    ..
                }
            ) || matches!(
                op,
                TraceOp::Probe {
                    src: ANY_SOURCE,
                    ..
                }
            ) || matches!(
                op,
                TraceOp::Iprobe {
                    src: ANY_SOURCE,
                    ..
                }
            )
        })
}

/// For each `WORLD` send `src → dest` (channel order), the op index of
/// the named receive at `dest` that consumes it — positional matching
/// per non-overtaking. `None` for unconsumed sends. Only meaningful for
/// [`maskable_receiver`] destinations, whose receives are all named.
fn send_consumers(model: &TraceModel, src: usize, dest: usize) -> Vec<Option<usize>> {
    let sends = channel_tags(model, src, dest);
    let mut consumer = vec![None; sends.len()];
    for (p, op) in model.ops[dest].iter().enumerate() {
        if let TraceOp::Irecv {
            comm: WORLD,
            src: r,
            tag,
        } = op
        {
            if *r == src as i32 {
                if let Some(j) =
                    (0..sends.len()).find(|&j| consumer[j].is_none() && tag_matches(*tag, sends[j]))
                {
                    consumer[j] = Some(p);
                }
            }
        }
    }
    consumer
}

/// Pass 5: symmetry orbits with payload-oblivious relaxation, plus the
/// receive points `(rank, op index)` the relaxation was spent on.
///
/// Two ranks are grouped exactly as in [`rank_orbits`], except that when
/// a third rank's projections toward the pair differ *only in send
/// digests*, the pair still merges provided both are *maskable
/// receivers* (trace runs to finalize, no wildcard receive or probe
/// anywhere) — cross-rank twin evidence: the two ranks
/// received different contents yet posted byte-identical op sequences of
/// their own, so the delivered content provably did not steer their
/// traced behavior, and no wildcard or truncation lets it steer anything
/// the trace cannot see. The twins' *own* sends are never masked — fig3's
/// 22-vs-33 senders keep distinct signatures and stay unmerged.
#[must_use]
pub fn rank_orbits_oblivious(
    model: &TraceModel,
) -> (Vec<BTreeSet<usize>>, BTreeSet<(usize, usize)>) {
    let n = model.nprocs;
    if n < 2 || model.ops.iter().any(|ops| has_opaque_p2p(ops)) {
        return (Vec::new(), BTreeSet::new());
    }
    let sigs: Vec<Vec<OpSig>> = model
        .ops
        .iter()
        .map(|ops| ops.iter().map(op_sig).collect())
        .collect();
    // `Some(diffs)` when interchangeable; `diffs` lists `(third rank,
    // channel send index)` positions whose digests had to be masked.
    let check = |a: usize, b: usize| -> Option<Vec<(usize, usize)>> {
        if sigs[a] != sigs[b]
            || names(&model.ops[a], a)
            || names(&model.ops[a], b)
            || names(&model.ops[b], a)
            || names(&model.ops[b], b)
        {
            return None;
        }
        let mut diffs = Vec::new();
        for r in (0..n).filter(|&r| r != a && r != b) {
            let pa = projection(&model.ops[r], a);
            let pb = projection(&model.ops[r], b);
            if pa == pb {
                continue;
            }
            if masked(&pa) != masked(&pb) {
                return None;
            }
            let mut send_idx = 0usize;
            for (ea, eb) in pa.iter().zip(&pb) {
                if ea.0 == 0 {
                    if ea.3 != eb.3 {
                        diffs.push((r, send_idx));
                    }
                    send_idx += 1;
                }
            }
        }
        let masking_licensed = maskable_receiver(&model.ops[a]) && maskable_receiver(&model.ops[b]);
        if !diffs.is_empty() && !masking_licensed {
            return None;
        }
        Some(diffs)
    };
    let mut orbit = vec![usize::MAX; n];
    let mut orbits: Vec<BTreeSet<usize>> = Vec::new();
    let mut oblivious: BTreeSet<(usize, usize)> = BTreeSet::new();
    for a in 0..n {
        if orbit[a] != usize::MAX {
            continue;
        }
        let mut group = BTreeSet::from([a]);
        for (b, &ob) in orbit.iter().enumerate().skip(a + 1) {
            if ob != usize::MAX {
                continue;
            }
            let Some(diffs) = check(a, b) else {
                continue;
            };
            group.insert(b);
            for (r, si) in diffs {
                for x in [a, b] {
                    if let Some(p) = send_consumers(model, r, x).get(si).copied().flatten() {
                        oblivious.insert((x, p));
                    }
                }
            }
        }
        let id = orbits.len();
        for &r in &group {
            orbit[r] = id;
        }
        orbits.push(group);
    }
    orbits.retain(|g| g.len() >= 2);
    (orbits, oblivious)
}

/// Assemble every pass into the plan the scheduler consumes. The one-call
/// entry; `analyze` computes the intermediate results itself (to share
/// them with the report) and calls [`assemble_plan`].
#[must_use]
pub fn build_plan(model: &TraceModel) -> PrunePlan {
    let sets = match_sets(model);
    let refinement = refine_match_sets(model, &sets);
    assemble_plan(model, &sets, &refinement)
}

/// Assemble a version-2 [`PrunePlan`] from precomputed pass outputs.
/// The refined sets are split so the scheduler's counters stay disjoint:
/// `refined_infeasible` / `refined_deterministic` carry only what the
/// fixed point proves *beyond* the single-pass facts.
#[must_use]
pub fn assemble_plan(model: &TraceModel, sets: &MatchSets, refinement: &Refinement) -> PrunePlan {
    let infeasible = infeasible_alternates(model);
    let refined_infeasible: BTreeSet<(usize, u64, usize)> = refinement
        .refuted_alternates
        .iter()
        .copied()
        .filter(|k| !infeasible.contains(k))
        .collect();
    // Orbits are only ever consumed at wildcard forks; for a
    // wildcard-free trace they could never prune anything, so don't
    // report phantom symmetry.
    let (orbits, oblivious_receives) = if model.epochs.is_empty() {
        (Vec::new(), BTreeSet::new())
    } else {
        rank_orbits_oblivious(model)
    };
    PrunePlan {
        version: PRUNE_PLAN_VERSION,
        infeasible,
        deterministic: deterministic_wildcards(sets),
        orbits,
        refined_infeasible,
        refined_deterministic: refinement.newly_deterministic.clone(),
        oblivious_receives,
        // Protocol facts are merged in by `analyze_with_protocol` after
        // the conformance check — the passes know nothing about specs.
        protocol_infeasible: BTreeSet::new(),
        protocol_deterministic: BTreeSet::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_clocks::ClockStamp;
    use dampi_core::epoch::EpochRecord;
    use dampi_mpi::trace::TraceEvent;
    use dampi_mpi::Comm;

    fn ev(rank: usize, seq: u64, op: TraceOp) -> TraceEvent {
        TraceEvent {
            rank,
            seq,
            vt: 0.0,
            op,
        }
    }

    fn send(comm: u32, dest: i32, tag: Tag) -> TraceOp {
        TraceOp::Isend {
            comm,
            dest,
            tag,
            bytes: 8,
            digest: 0,
        }
    }

    fn epoch(
        rank: usize,
        clock: u64,
        tag_spec: Tag,
        matched: Option<usize>,
        alts: &[usize],
    ) -> EpochRecord {
        EpochRecord {
            rank,
            clock,
            stamp: ClockStamp::Lamport(clock),
            comm: Comm::WORLD,
            tag_spec,
            kind: NdKind::Recv,
            in_region: false,
            guided: false,
            matched_src: matched,
            alternates: alts.iter().copied().collect(),
        }
    }

    #[test]
    fn singleton_match_set_is_deterministic() {
        // Only rank 0 sends to rank 1; the wildcard cannot branch.
        let events = vec![
            ev(0, 0, send(0, 1, 7)),
            ev(
                1,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 7,
                },
            ),
        ];
        let eps = vec![epoch(1, 1, 7, Some(0), &[])];
        let m = TraceModel::build(2, &events, &eps);
        let sets = match_sets(&m);
        assert_eq!(
            sets.get(&(1, 1)),
            Some(&Some(BTreeSet::from([0]))),
            "{sets:?}"
        );
        assert_eq!(deterministic_wildcards(&sets), BTreeSet::from([(1, 1)]));
    }

    #[test]
    fn tag_filter_excludes_incompatible_senders() {
        let events = vec![
            ev(0, 0, send(0, 2, 7)),
            ev(1, 0, send(0, 2, 9)),
            ev(
                2,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 7,
                },
            ),
        ];
        let eps = vec![epoch(2, 1, 7, Some(0), &[])];
        let m = TraceModel::build(3, &events, &eps);
        let sets = match_sets(&m);
        assert_eq!(sets.get(&(2, 1)), Some(&Some(BTreeSet::from([0]))));
    }

    #[test]
    fn observed_superset_violation_marks_unknown() {
        // Epoch claims alternate 1 but the trace shows no send from 1:
        // the model must refuse to bound this epoch rather than prune it.
        let events = vec![
            ev(0, 0, send(0, 2, 7)),
            ev(
                2,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 7,
                },
            ),
        ];
        let eps = vec![epoch(2, 1, 7, Some(0), &[1])];
        let m = TraceModel::build(3, &events, &eps);
        let sets = match_sets(&m);
        assert_eq!(sets.get(&(2, 1)), Some(&None));
        assert!(deterministic_wildcards(&sets).is_empty());
    }

    #[test]
    fn named_receive_claim_refutes_alternate() {
        // Rank 1 sends one tagged message to rank 2; rank 2 posts a named
        // receive from 1 *before* the wildcard. Non-overtaking means the
        // wildcard can never see rank 1's send, yet the free run records
        // it as a late alternate.
        let events = vec![
            ev(0, 0, send(0, 2, 7)),
            ev(1, 0, send(0, 2, 7)),
            ev(
                2,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 1,
                    tag: 7,
                },
            ),
            ev(
                2,
                1,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 7,
                },
            ),
        ];
        let eps = vec![epoch(2, 1, 7, Some(0), &[1])];
        let m = TraceModel::build(3, &events, &eps);
        let inf = infeasible_alternates(&m);
        assert_eq!(inf, BTreeSet::from([(2, 1, 1)]));
    }

    #[test]
    fn second_send_keeps_alternate_feasible() {
        // Same as above but rank 1 sends twice: the named receive claims
        // one, the wildcard can still take the other.
        let events = vec![
            ev(0, 0, send(0, 2, 7)),
            ev(1, 0, send(0, 2, 7)),
            ev(1, 1, send(0, 2, 7)),
            ev(
                2,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 1,
                    tag: 7,
                },
            ),
            ev(
                2,
                1,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 7,
                },
            ),
        ];
        let eps = vec![epoch(2, 1, 7, Some(0), &[1])];
        let m = TraceModel::build(3, &events, &eps);
        assert!(infeasible_alternates(&m).is_empty());
    }

    #[test]
    fn cross_tag_claims_do_not_refute() {
        // Rank 1 sends tags 5 and 6; the earlier named receive takes only
        // tag 5, so an ANY_TAG wildcard can still take the tag-6 send.
        let events = vec![
            ev(1, 0, send(0, 2, 5)),
            ev(1, 1, send(0, 2, 6)),
            ev(
                2,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 1,
                    tag: 5,
                },
            ),
            ev(
                2,
                1,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: ANY_TAG,
                },
            ),
            ev(0, 0, send(0, 2, 6)),
        ];
        let eps = vec![epoch(2, 1, ANY_TAG, Some(0), &[1])];
        let m = TraceModel::build(3, &events, &eps);
        assert!(infeasible_alternates(&m).is_empty());
    }

    #[test]
    fn earlier_epoch_match_counts_as_claim() {
        // Two wildcards at rank 2; the first observedly matched rank 1,
        // whose only send is thereby spoken for in any forced replay of
        // the second epoch.
        let wild = TraceOp::Irecv {
            comm: 0,
            src: ANY_SOURCE,
            tag: 7,
        };
        let events = vec![
            ev(0, 0, send(0, 2, 7)),
            ev(1, 0, send(0, 2, 7)),
            ev(2, 0, wild.clone()),
            ev(2, 1, wild),
        ];
        let eps = vec![epoch(2, 1, 7, Some(1), &[0]), epoch(2, 2, 7, Some(0), &[1])];
        let m = TraceModel::build(3, &events, &eps);
        let inf = infeasible_alternates(&m);
        assert_eq!(inf, BTreeSet::from([(2, 2, 1)]));
    }

    #[test]
    fn symmetric_senders_form_an_orbit() {
        // Ranks 1 and 2 each send one identical message to rank 0 and
        // never talk to each other; rank 0 treats them via wildcards only.
        let wild = TraceOp::Irecv {
            comm: 0,
            src: ANY_SOURCE,
            tag: 7,
        };
        let events = vec![
            ev(0, 0, wild.clone()),
            ev(0, 1, wild),
            ev(1, 0, send(0, 0, 7)),
            ev(2, 0, send(0, 0, 7)),
        ];
        let m = TraceModel::build(3, &events, &[]);
        assert_eq!(rank_orbits(&m), vec![BTreeSet::from([1, 2])]);
    }

    #[test]
    fn differing_payload_sizes_break_the_orbit() {
        let wild = TraceOp::Irecv {
            comm: 0,
            src: ANY_SOURCE,
            tag: 7,
        };
        let events = vec![
            ev(0, 0, wild.clone()),
            ev(0, 1, wild),
            ev(1, 0, send(0, 0, 7)),
            ev(
                2,
                0,
                TraceOp::Isend {
                    comm: 0,
                    dest: 0,
                    tag: 7,
                    bytes: 16,
                    digest: 0,
                },
            ),
        ];
        let m = TraceModel::build(3, &events, &[]);
        assert!(rank_orbits(&m).is_empty());
    }

    #[test]
    fn differing_payload_contents_break_the_orbit() {
        // The Fig. 3 shape: ranks 0 and 2 each send one equal-length
        // message to rank 1's wildcards, but the payloads *differ* (22
        // vs. 33) and the receiver asserts on the value. Grouping them
        // by length alone would prune the bug-revealing fork; the
        // content digest must keep them distinct.
        let wild = TraceOp::Irecv {
            comm: 0,
            src: ANY_SOURCE,
            tag: 7,
        };
        let payload = |digest| TraceOp::Isend {
            comm: 0,
            dest: 1,
            tag: 7,
            bytes: 8,
            digest,
        };
        let events = vec![
            ev(0, 0, payload(22)),
            ev(1, 0, wild.clone()),
            ev(1, 1, wild),
            ev(2, 0, payload(33)),
        ];
        let m = TraceModel::build(3, &events, &[]);
        assert!(rank_orbits(&m).is_empty());
    }

    #[test]
    fn third_rank_distinguishing_peers_breaks_the_orbit() {
        // Ranks 1 and 2 behave identically, but rank 0 sends to rank 1
        // only — the projections toward 1 and 2 differ.
        let events = vec![
            ev(0, 0, send(0, 1, 3)),
            ev(
                1,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: ANY_TAG,
                },
            ),
            ev(
                2,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: ANY_TAG,
                },
            ),
        ];
        let m = TraceModel::build(3, &events, &[]);
        assert!(rank_orbits(&m).is_empty());
    }

    #[test]
    fn ranks_naming_each_other_break_the_orbit() {
        let events = vec![
            ev(1, 0, send(0, 2, 3)),
            ev(2, 0, send(0, 1, 3)),
            ev(
                1,
                1,
                TraceOp::Irecv {
                    comm: 0,
                    src: 2,
                    tag: 3,
                },
            ),
            ev(
                2,
                1,
                TraceOp::Irecv {
                    comm: 0,
                    src: 1,
                    tag: 3,
                },
            ),
        ];
        let m = TraceModel::build(3, &events, &[]);
        // Mirror-image sequences are not even equal (dest differs), and
        // they name each other; no orbit.
        assert!(rank_orbits(&m).is_empty());
    }

    #[test]
    fn refinement_refutes_what_counting_cannot() {
        // Rank 1 sends [tag 9, tag 7] to rank 0; rank 3 sends [tag 9].
        // Epoch 0 (ANY_TAG) observedly matched rank 1, consuming rank 1's
        // *first* send (tag 9) positionally. Epoch 1 (tag 9) then records
        // rank 1 as an alternate — but rank 1's only remaining send is
        // tag 7. Count-based pass 2 can't see this (mixed-tag channel);
        // the positional fixed point can.
        let events = vec![
            ev(1, 0, send(0, 0, 9)),
            ev(1, 1, send(0, 0, 7)),
            ev(3, 0, send(0, 0, 9)),
            ev(
                0,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: ANY_TAG,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 9,
                },
            ),
        ];
        let eps = vec![
            epoch(0, 1, ANY_TAG, Some(1), &[3]),
            epoch(0, 2, 9, Some(3), &[1]),
        ];
        let m = TraceModel::build(4, &events, &eps);
        assert!(infeasible_alternates(&m).is_empty(), "counting must fail");
        let sets = match_sets(&m);
        let r = refine_match_sets(&m, &sets);
        assert_eq!(r.sets.get(&(0, 2)), Some(&Some(BTreeSet::from([3]))));
        assert_eq!(r.newly_deterministic, BTreeSet::from([(0, 2)]));
        assert_eq!(r.refuted_alternates, BTreeSet::from([(0, 2, 1)]));
        assert_eq!(r.iterations, 2);
        let plan = assemble_plan(&m, &sets, &r);
        assert!(plan.infeasible.is_empty());
        assert_eq!(plan.refined_infeasible, BTreeSet::from([(0, 2, 1)]));
        assert_eq!(plan.refined_deterministic, BTreeSet::from([(0, 2)]));
    }

    #[test]
    fn singleton_rule_propagates_through_unmatched_epoch() {
        // Epoch 0 never completed (matched None — deadlocked free run),
        // but a named receive pins its set to {1}; that singleton claim
        // then refutes epoch 1's alternate 1 — the rule the
        // observed-match-only pass 2 cannot apply.
        let events = vec![
            ev(1, 0, send(0, 0, 7)),
            ev(2, 0, send(0, 0, 7)),
            ev(3, 0, send(0, 0, 9)),
            ev(
                0,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 2,
                    tag: 7,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 7,
                },
            ),
            ev(
                0,
                2,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: ANY_TAG,
                },
            ),
        ];
        let eps = vec![
            epoch(0, 1, 7, None, &[]),
            epoch(0, 2, ANY_TAG, Some(3), &[1]),
        ];
        let m = TraceModel::build(4, &events, &eps);
        assert!(infeasible_alternates(&m).is_empty());
        let sets = match_sets(&m);
        let r = refine_match_sets(&m, &sets);
        assert_eq!(r.sets.get(&(0, 1)), Some(&Some(BTreeSet::from([1]))));
        assert_eq!(r.sets.get(&(0, 2)), Some(&Some(BTreeSet::from([3]))));
        assert_eq!(r.refuted_alternates, BTreeSet::from([(0, 2, 1)]));
        assert_eq!(r.iterations, 2);
    }

    #[test]
    fn refined_sets_are_subsets_of_base() {
        let events = vec![
            ev(1, 0, send(0, 0, 9)),
            ev(1, 1, send(0, 0, 7)),
            ev(3, 0, send(0, 0, 9)),
            ev(
                0,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: ANY_TAG,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 9,
                },
            ),
        ];
        let eps = vec![
            epoch(0, 1, ANY_TAG, Some(1), &[3]),
            epoch(0, 2, 9, Some(3), &[1]),
        ];
        let m = TraceModel::build(4, &events, &eps);
        let sets = match_sets(&m);
        let r = refine_match_sets(&m, &sets);
        for (k, base) in &sets {
            match (base, r.sets.get(k).unwrap()) {
                (Some(b), Some(refined)) => assert!(refined.is_subset(b), "{k:?}"),
                (None, refined) => assert!(refined.is_none(), "{k:?}"),
                (Some(_), None) => panic!("{k:?}: refinement lost a bounded set"),
            }
        }
    }

    #[test]
    fn op_level_candidates_use_only_structural_claims() {
        // Same trace as the singleton-rule test, but without any epoch
        // log: the op-level fixed point must reach the same conclusion
        // from the named receive alone — valid on every schedule.
        let events = vec![
            ev(1, 0, send(0, 0, 7)),
            ev(2, 0, send(0, 0, 7)),
            ev(3, 0, send(0, 0, 9)),
            ev(
                0,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 2,
                    tag: 7,
                },
            ),
            ev(
                0,
                1,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 7,
                },
            ),
            ev(
                0,
                2,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: ANY_TAG,
                },
            ),
        ];
        let m = TraceModel::build(4, &events, &[]);
        let cands = wildcard_op_candidates(&m);
        assert_eq!(cands.get(&(0, 1)), Some(&BTreeSet::from([1])));
        assert_eq!(cands.get(&(0, 2)), Some(&BTreeSet::from([3])));
    }

    #[test]
    fn unmatchable_wildcard_has_empty_candidates() {
        // Nobody ever sends tag 9: the wildcard is definitely stuck.
        let events = vec![
            ev(1, 0, send(0, 0, 7)),
            ev(
                0,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 9,
                },
            ),
        ];
        let m = TraceModel::build(2, &events, &[]);
        assert_eq!(
            wildcard_op_candidates(&m).get(&(0, 0)),
            Some(&BTreeSet::new())
        );
    }

    #[test]
    fn oblivious_twins_merge_despite_distinct_payloads() {
        // Master 0 sends equal-shape, different-content payloads to
        // workers 1 and 2, who behave identically, receive only by name,
        // and run to Finalize: the digests may be masked and the pair
        // merges, with the consuming receives reported as oblivious.
        let payload = |dest, digest| TraceOp::Isend {
            comm: 0,
            dest,
            tag: 4,
            bytes: 8,
            digest,
        };
        let events = vec![
            ev(0, 0, payload(1, 11)),
            ev(0, 1, payload(2, 22)),
            ev(
                1,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 0,
                    tag: 4,
                },
            ),
            ev(1, 1, TraceOp::Finalize),
            ev(
                2,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 0,
                    tag: 4,
                },
            ),
            ev(2, 1, TraceOp::Finalize),
        ];
        let m = TraceModel::build(3, &events, &[]);
        assert!(rank_orbits(&m).is_empty(), "exact pass must stay blocked");
        let (orbits, oblivious) = rank_orbits_oblivious(&m);
        assert_eq!(orbits, vec![BTreeSet::from([1, 2])]);
        assert_eq!(oblivious, BTreeSet::from([(1, 0), (2, 0)]));
    }

    #[test]
    fn truncated_trace_blocks_oblivious_merge() {
        // Same shape but no Finalize: content-dependent divergence could
        // hide past the cut, so the digests must not be masked.
        let payload = |dest, digest| TraceOp::Isend {
            comm: 0,
            dest,
            tag: 4,
            bytes: 8,
            digest,
        };
        let events = vec![
            ev(0, 0, payload(1, 11)),
            ev(0, 1, payload(2, 22)),
            ev(
                1,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 0,
                    tag: 4,
                },
            ),
            ev(
                2,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 0,
                    tag: 4,
                },
            ),
        ];
        let m = TraceModel::build(3, &events, &[]);
        assert!(rank_orbits_oblivious(&m).0.is_empty());
    }

    #[test]
    fn wildcard_receiver_blocks_oblivious_merge() {
        // Receivers use ANY_SOURCE: delivered content could steer which
        // message matches next, so masking is off the table.
        let payload = |dest, digest| TraceOp::Isend {
            comm: 0,
            dest,
            tag: 4,
            bytes: 8,
            digest,
        };
        let wild = TraceOp::Irecv {
            comm: 0,
            src: ANY_SOURCE,
            tag: 4,
        };
        let events = vec![
            ev(0, 0, payload(1, 11)),
            ev(0, 1, payload(2, 22)),
            ev(1, 0, wild.clone()),
            ev(1, 1, TraceOp::Finalize),
            ev(2, 0, wild),
            ev(2, 1, TraceOp::Finalize),
        ];
        let m = TraceModel::build(3, &events, &[]);
        assert!(rank_orbits_oblivious(&m).0.is_empty());
    }

    #[test]
    fn fig3_twins_stay_distinct_under_oblivious() {
        // The senders' *own* digests differ (22 vs. 33); masking only
        // ever applies to what twins receive, never to what they send.
        let wild = TraceOp::Irecv {
            comm: 0,
            src: ANY_SOURCE,
            tag: 7,
        };
        let payload = |digest| TraceOp::Isend {
            comm: 0,
            dest: 1,
            tag: 7,
            bytes: 8,
            digest,
        };
        let events = vec![
            ev(0, 0, payload(22)),
            ev(1, 0, wild.clone()),
            ev(1, 1, wild),
            ev(2, 0, payload(33)),
        ];
        let m = TraceModel::build(3, &events, &[]);
        assert!(rank_orbits_oblivious(&m).0.is_empty());
    }

    #[test]
    fn opaque_derived_comm_p2p_disables_orbits() {
        let wild = TraceOp::Irecv {
            comm: 0,
            src: ANY_SOURCE,
            tag: 7,
        };
        let events = vec![
            ev(0, 0, wild.clone()),
            ev(0, 1, wild),
            ev(
                0,
                2,
                TraceOp::Isend {
                    comm: 3,
                    dest: 0,
                    tag: 1,
                    bytes: 1,
                    digest: 0,
                },
            ),
            ev(1, 0, send(0, 0, 7)),
            ev(2, 0, send(0, 0, 7)),
        ];
        let m = TraceModel::build(3, &events, &[]);
        assert!(rank_orbits(&m).is_empty());
    }
}
