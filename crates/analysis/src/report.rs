//! The analysis report: everything the pre-replay passes concluded.

use std::collections::BTreeMap;
use std::fmt;

use dampi_core::prune::PrunePlan;
use serde_json::json;

use crate::lints::{Lint, Severity};

/// Version stamp of the `analyze --json` document layout.
///
/// v2 added the `protocol` block (session-typed conformance: spec digest,
/// per-rank status, L006–L008 counts) and the protocol plan sections.
pub const ANALYSIS_SCHEMA_VERSION: u32 = 2;

/// Summary of a protocol conformance check, embedded in the report when
/// `analyze --protocol` supplied a spec.
#[derive(Debug, Clone)]
pub struct ProtocolSummary {
    /// Display name of the spec.
    pub spec_name: String,
    /// FNV-1a digest of the spec source text.
    pub spec_digest: u64,
    /// Per-rank conformance outcome (stable labels from
    /// [`crate::conformance::RankStatus::as_str`]).
    pub rank_status: Vec<&'static str>,
    /// L006 (protocol-order) findings.
    pub l006: usize,
    /// L007 (protocol-peer) findings.
    pub l007: usize,
    /// L008 (protocol-incomplete) findings.
    pub l008: usize,
}

/// Result of running the static pre-analysis over one traced free run.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Program name analyzed.
    pub program: String,
    /// World size.
    pub nprocs: usize,
    /// Epochs (wildcard receive/probe instances) in the free run.
    pub epochs: usize,
    /// Epochs successfully aligned with the event trace.
    pub epochs_mapped: usize,
    /// Recorded alternates across all epochs (the unpruned frontier mass).
    pub alternates_recorded: usize,
    /// Over-approximated match-set size per epoch, keyed `"rank:clock"`;
    /// `None` where the set could not be bounded.
    pub match_set_sizes: BTreeMap<String, Option<usize>>,
    /// Match-set sizes after the cross-epoch fixed-point refinement —
    /// pointwise ≤ [`AnalysisReport::match_set_sizes`].
    pub refined_match_set_sizes: BTreeMap<String, Option<usize>>,
    /// Rounds the refinement took to reach its fixed point (includes the
    /// final no-change round).
    pub refinement_iterations: usize,
    /// The assembled prune plan (deterministic wildcards, infeasible
    /// alternates, refinement deltas, symmetry orbits, oblivious
    /// receives).
    pub plan: PrunePlan,
    /// Definite-bug lints.
    pub lints: Vec<Lint>,
    /// Protocol conformance summary — `None` when no spec was supplied.
    pub protocol: Option<ProtocolSummary>,
    /// Analysis caveats (alignment failures and the like).
    pub notes: Vec<String>,
}

impl AnalysisReport {
    /// The plan the scheduler consumes (`verify --prune-static`).
    #[must_use]
    pub fn prune_plan(&self) -> PrunePlan {
        self.plan.clone()
    }

    /// Number of error-severity lints — the CLI's exit-status signal.
    #[must_use]
    pub fn error_lints(&self) -> usize {
        self.lints
            .iter()
            .filter(|l| l.severity == Severity::Error)
            .count()
    }

    /// Machine-readable export (CI integration, `analyze --json`).
    #[must_use]
    pub fn to_json(&self) -> serde_json::Value {
        json!({
            "schema_version": ANALYSIS_SCHEMA_VERSION,
            "program": self.program,
            "nprocs": self.nprocs,
            "epochs": self.epochs,
            "epochs_mapped": self.epochs_mapped,
            "alternates_recorded": self.alternates_recorded,
            "match_set_sizes": self.match_set_sizes,
            "refined_match_set_sizes": self.refined_match_set_sizes,
            "refinement_iterations": self.refinement_iterations,
            "plan_version": self.plan.version,
            "deterministic_wildcards": self.plan.deterministic.iter()
                .map(|(r, c)| json!({"rank": r, "clock": c}))
                .collect::<Vec<_>>(),
            "infeasible_alternates": self.plan.infeasible.iter()
                .map(|(r, c, s)| json!({"rank": r, "clock": c, "src": s}))
                .collect::<Vec<_>>(),
            "refined_deterministic_wildcards": self.plan.refined_deterministic.iter()
                .map(|(r, c)| json!({"rank": r, "clock": c}))
                .collect::<Vec<_>>(),
            "refined_infeasible_alternates": self.plan.refined_infeasible.iter()
                .map(|(r, c, s)| json!({"rank": r, "clock": c, "src": s}))
                .collect::<Vec<_>>(),
            "oblivious_receives": self.plan.oblivious_receives.iter()
                .map(|(r, p)| json!({"rank": r, "op": p}))
                .collect::<Vec<_>>(),
            "orbits": self.plan.orbits.iter()
                .map(|o| o.iter().collect::<Vec<_>>())
                .collect::<Vec<_>>(),
            "protocol_deterministic_wildcards": self.plan.protocol_deterministic.iter()
                .map(|(r, c)| json!({"rank": r, "clock": c}))
                .collect::<Vec<_>>(),
            "protocol_infeasible_alternates": self.plan.protocol_infeasible.iter()
                .map(|(r, c, s)| json!({"rank": r, "clock": c, "src": s}))
                .collect::<Vec<_>>(),
            "protocol": self.protocol.as_ref().map(|p| json!({
                "spec_name": p.spec_name,
                "spec_digest": format!("{:016x}", p.spec_digest),
                "rank_status": p.rank_status,
                "l006": p.l006,
                "l007": p.l007,
                "l008": p.l008,
            })),
            "lints": self.lints.iter().map(Lint::to_json).collect::<Vec<_>>(),
            "error_lints": self.error_lints(),
            "notes": self.notes,
        })
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DAMPI static pre-analysis of `{}` ({} procs)",
            self.program, self.nprocs
        )?;
        writeln!(
            f,
            "  epochs: {} ({} aligned with the trace), {} recorded alternate(s)",
            self.epochs, self.epochs_mapped, self.alternates_recorded
        )?;
        writeln!(
            f,
            "  deterministic wildcards: {}   infeasible alternates: {}",
            self.plan.deterministic.len(),
            self.plan.infeasible.len()
        )?;
        writeln!(
            f,
            "  refinement ({} round(s)): +{} deterministic, +{} infeasible, {} oblivious receive(s)",
            self.refinement_iterations,
            self.plan.refined_deterministic.len(),
            self.plan.refined_infeasible.len(),
            self.plan.oblivious_receives.len()
        )?;
        if self.plan.orbits.is_empty() {
            writeln!(f, "  symmetry orbits: none")?;
        } else {
            let groups: Vec<String> = self
                .plan
                .orbits
                .iter()
                .map(|o| format!("{:?}", o.iter().collect::<Vec<_>>()))
                .collect();
            writeln!(f, "  symmetry orbits: {}", groups.join(" "))?;
        }
        if let Some(p) = &self.protocol {
            writeln!(
                f,
                "  protocol `{}` ({:016x}): {} — {} order / {} peer / {} incomplete \
                 violation(s); {} protocol-deterministic, {} protocol-infeasible",
                p.spec_name,
                p.spec_digest,
                if p.rank_status.iter().all(|s| *s == "conformant") {
                    "all ranks conformant".to_string()
                } else {
                    format!("{:?}", p.rank_status)
                },
                p.l006,
                p.l007,
                p.l008,
                self.plan.protocol_deterministic.len(),
                self.plan.protocol_infeasible.len()
            )?;
        }
        if self.lints.is_empty() {
            writeln!(f, "  lints: none")?;
        } else {
            writeln!(f, "  lints ({}):", self.lints.len())?;
            for l in &self.lints {
                writeln!(f, "    {l}")?;
            }
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn report() -> AnalysisReport {
        AnalysisReport {
            program: "demo".into(),
            nprocs: 4,
            epochs: 3,
            epochs_mapped: 3,
            alternates_recorded: 5,
            match_set_sizes: BTreeMap::from([
                ("1:1".to_string(), Some(2)),
                ("1:2".to_string(), None),
            ]),
            refined_match_set_sizes: BTreeMap::from([
                ("1:1".to_string(), Some(1)),
                ("1:2".to_string(), None),
            ]),
            refinement_iterations: 2,
            plan: PrunePlan {
                infeasible: BTreeSet::from([(1, 2, 3)]),
                deterministic: BTreeSet::from([(2, 1)]),
                refined_infeasible: BTreeSet::from([(1, 1, 2)]),
                refined_deterministic: BTreeSet::from([(1, 1)]),
                oblivious_receives: BTreeSet::from([(0, 4)]),
                orbits: vec![BTreeSet::from([1, 2])],
                ..PrunePlan::default()
            },
            lints: vec![Lint {
                id: "L001",
                kind: "collective-mismatch",
                severity: Severity::Error,
                ranks: vec![0, 1],
                message: "demo".into(),
            }],
            protocol: None,
            notes: vec!["rank 3: unmapped".into()],
        }
    }

    #[test]
    fn json_exposes_every_section() {
        let j = report().to_json();
        assert_eq!(j["schema_version"], ANALYSIS_SCHEMA_VERSION);
        assert_eq!(j["infeasible_alternates"][0]["src"], 3);
        assert_eq!(j["deterministic_wildcards"][0]["rank"], 2);
        assert_eq!(j["orbits"][0], serde_json::json!([1, 2]));
        assert_eq!(j["lints"][0]["id"], "L001");
        assert_eq!(j["lints"][0]["severity"], "error");
        assert_eq!(j["error_lints"], 1);
        assert_eq!(j["match_set_sizes"]["1:1"], 2);
        assert!(j["match_set_sizes"]["1:2"].is_null());
        assert_eq!(j["refined_match_set_sizes"]["1:1"], 1);
        assert_eq!(j["refinement_iterations"], 2);
        assert_eq!(j["plan_version"], dampi_core::prune::PRUNE_PLAN_VERSION);
        assert_eq!(j["refined_infeasible_alternates"][0]["src"], 2);
        assert_eq!(j["refined_deterministic_wildcards"][0]["clock"], 1);
        assert_eq!(j["oblivious_receives"][0]["op"], 4);
        assert!(j["protocol"].is_null());
        assert_eq!(j["protocol_deterministic_wildcards"], serde_json::json!([]));
        assert_eq!(j["protocol_infeasible_alternates"], serde_json::json!([]));
    }

    #[test]
    fn protocol_block_surfaces_in_json_and_display() {
        let mut r = report();
        r.protocol = Some(ProtocolSummary {
            spec_name: "demo".into(),
            spec_digest: 0xdead_beef,
            rank_status: vec!["conformant", "order-violation"],
            l006: 1,
            l007: 0,
            l008: 0,
        });
        r.plan.protocol_deterministic = BTreeSet::from([(0, 7)]);
        r.plan.protocol_infeasible = BTreeSet::from([(0, 7, 2)]);
        let j = r.to_json();
        assert_eq!(j["protocol"]["spec_name"], "demo");
        assert_eq!(j["protocol"]["spec_digest"], "00000000deadbeef");
        assert_eq!(j["protocol"]["rank_status"][1], "order-violation");
        assert_eq!(j["protocol"]["l006"], 1);
        assert_eq!(j["protocol_deterministic_wildcards"][0]["clock"], 7);
        assert_eq!(j["protocol_infeasible_alternates"][0]["src"], 2);
        let s = r.to_string();
        assert!(s.contains("protocol `demo`"), "{s}");
        assert!(s.contains("1 order"), "{s}");
    }

    #[test]
    fn display_mentions_key_facts() {
        let s = report().to_string();
        assert!(s.contains("deterministic wildcards: 1"), "{s}");
        assert!(s.contains("infeasible alternates: 1"), "{s}");
        assert!(
            s.contains("refinement (2 round(s)): +1 deterministic, +1 infeasible"),
            "{s}"
        );
        assert!(s.contains("L001"), "{s}");
        assert!(s.contains("note: rank 3"), "{s}");
    }

    #[test]
    fn error_lint_count_ignores_warnings() {
        let mut r = report();
        r.lints.push(Lint {
            id: "L002",
            kind: "request-leak",
            severity: Severity::Warning,
            ranks: vec![2],
            message: "demo".into(),
        });
        assert_eq!(r.error_lints(), 1);
    }
}
