//! The per-rank operation model the analysis passes walk.
//!
//! Built from one free run's application-level event trace
//! ([`dampi_mpi::trace::TraceEvent`], recorded *above* the DAMPI layer)
//! plus the epoch log the tool collected from the same run. The model
//! aligns the two: the *k*-th wildcard receive/probe event in a rank's
//! trace is the *k*-th epoch of that rank (epochs are keyed by a per-rank
//! strictly increasing clock). When a rank's wildcard-event count and
//! epoch count disagree — which can only happen on a truncated trace
//! (fatal error mid-run) — the rank's epochs are left *unmapped* and the
//! match-set passes skip them instead of guessing.

use std::collections::BTreeMap;

use dampi_core::epoch::{EpochRecord, NdKind};
use dampi_mpi::trace::{TraceEvent, TraceOp};
use dampi_mpi::ANY_SOURCE;

/// Communicator id of `Comm::WORLD` in the trace encoding.
pub const WORLD: u32 = 0;

/// The aligned trace + epoch model for one free run.
#[derive(Debug)]
pub struct TraceModel {
    /// World size.
    pub nprocs: usize,
    /// Per-rank operations in program (seq) order.
    pub ops: Vec<Vec<TraceOp>>,
    /// All epochs, sorted by `(rank, clock)`.
    pub epochs: Vec<EpochRecord>,
    /// For each epoch (index into [`Self::epochs`]), the op index within
    /// its rank's trace — `None` when the rank could not be aligned.
    pub epoch_pos: Vec<Option<usize>>,
    /// Per-rank map from trace op index back to the epoch index, for the
    /// wildcard ops that opened an epoch.
    pub epoch_at: Vec<BTreeMap<usize, usize>>,
    /// World-rank membership of every communicator the trace can resolve,
    /// in comm-rank order: `comms[&c][r]` is the world rank of comm rank
    /// `r` in comm `c`. Always contains WORLD; derived comms are
    /// reconstructed from `CommDup`/`CommSplit` records (splits order
    /// members by `(key, parent comm rank)`, mirroring the runtime).
    pub comms: BTreeMap<u32, Vec<usize>>,
    /// Analysis caveats worth surfacing (alignment failures etc.).
    pub notes: Vec<String>,
}

/// Rebuild derived-communicator membership from creation records. Comm
/// ids are assigned in global creation order by the runtime, so building
/// in id order resolves chains (a dup of a split) in one pass.
fn resolve_comms(nprocs: usize, ops: &[Vec<TraceOp>]) -> BTreeMap<u32, Vec<usize>> {
    enum Creation {
        Dup {
            parent: u32,
        },
        Split {
            parent: u32,
            members: Vec<(i64, usize)>,
        },
    }
    let mut created: BTreeMap<u32, Creation> = BTreeMap::new();
    for (rank, ops) in ops.iter().enumerate() {
        for op in ops {
            match op {
                TraceOp::CommDup { parent, result } => {
                    created
                        .entry(*result)
                        .or_insert(Creation::Dup { parent: *parent });
                }
                TraceOp::CommSplit {
                    parent,
                    key,
                    result: Some(result),
                    ..
                } => {
                    let entry = created.entry(*result).or_insert(Creation::Split {
                        parent: *parent,
                        members: Vec::new(),
                    });
                    if let Creation::Split { members, .. } = entry {
                        members.push((*key, rank));
                    }
                }
                _ => {}
            }
        }
    }
    let mut comms: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    comms.insert(WORLD, (0..nprocs).collect());
    for (id, creation) in created {
        match creation {
            Creation::Dup { parent } => {
                if let Some(members) = comms.get(&parent).cloned() {
                    comms.insert(id, members);
                }
            }
            Creation::Split {
                parent,
                mut members,
            } => {
                let Some(parent_members) = comms.get(&parent) else {
                    continue;
                };
                // Runtime order: (key, parent comm rank).
                let crank_of = |world: usize| parent_members.iter().position(|&w| w == world);
                if members.iter().any(|&(_, w)| crank_of(w).is_none()) {
                    continue;
                }
                members.sort_by_key(|&(key, w)| (key, crank_of(w)));
                comms.insert(id, members.into_iter().map(|(_, w)| w).collect());
            }
        }
    }
    comms
}

/// True when this op is a wildcard (`ANY_SOURCE`) receive — the event
/// kind that opens an [`NdKind::Recv`] epoch.
fn is_wild_recv(op: &TraceOp) -> bool {
    matches!(
        op,
        TraceOp::Irecv {
            src: ANY_SOURCE,
            ..
        }
    )
}

/// True when this op opened a probe epoch: a wildcard `Probe`, or a
/// wildcard `Iprobe` that *hit* (the tool records an epoch for `Iprobe`
/// only when the flag came back true, per paper §II-E).
fn is_wild_probe(op: &TraceOp) -> bool {
    matches!(
        op,
        TraceOp::Probe {
            src: ANY_SOURCE,
            ..
        }
    ) || matches!(
        op,
        TraceOp::Iprobe {
            src: ANY_SOURCE,
            hit: true,
            ..
        }
    )
}

impl TraceModel {
    /// Build the model from a traced free run.
    #[must_use]
    pub fn build(nprocs: usize, events: &[TraceEvent], epochs: &[EpochRecord]) -> Self {
        let mut ops: Vec<Vec<TraceOp>> = vec![Vec::new(); nprocs];
        for ev in events {
            if ev.rank < nprocs {
                ops[ev.rank].push(ev.op.clone());
            }
        }
        let mut epochs: Vec<EpochRecord> = epochs.to_vec();
        epochs.sort_by_key(|e| (e.rank, e.clock));

        let mut notes = Vec::new();
        let mut epoch_pos = vec![None; epochs.len()];
        let mut epoch_at = vec![BTreeMap::new(); nprocs];
        for rank in 0..nprocs {
            // Wildcard-op positions in trace order, split by kind so a
            // recv epoch can never be matched to a probe event.
            let nd: Vec<(usize, NdKind)> = ops[rank]
                .iter()
                .enumerate()
                .filter_map(|(i, op)| {
                    if is_wild_recv(op) {
                        Some((i, NdKind::Recv))
                    } else if is_wild_probe(op) {
                        Some((i, NdKind::Probe))
                    } else {
                        None
                    }
                })
                .collect();
            let eps: Vec<usize> = epochs
                .iter()
                .enumerate()
                .filter(|(_, e)| e.rank == rank)
                .map(|(i, _)| i)
                .collect();
            let aligned = nd.len() == eps.len()
                && nd
                    .iter()
                    .zip(&eps)
                    .all(|(&(_, kind), &ei)| epochs[ei].kind == kind);
            if aligned {
                for (&(pos, _), &ei) in nd.iter().zip(&eps) {
                    epoch_pos[ei] = Some(pos);
                    epoch_at[rank].insert(pos, ei);
                }
            } else if !nd.is_empty() || !eps.is_empty() {
                notes.push(format!(
                    "rank {rank}: {} wildcard trace op(s) vs {} epoch(s) — left unmapped",
                    nd.len(),
                    eps.len()
                ));
            }
        }
        let comms = resolve_comms(nprocs, &ops);
        Self {
            nprocs,
            ops,
            epochs,
            epoch_pos,
            epoch_at,
            comms,
            notes,
        }
    }

    /// World rank of `peer` (comm-relative, non-wildcard) in communicator
    /// `comm` — decodes WORLD directly and any derived comm whose
    /// membership the trace could reconstruct.
    #[must_use]
    pub fn resolve_peer(&self, comm: u32, peer: i32) -> Option<usize> {
        if comm == WORLD {
            return Self::world_peer(comm, peer);
        }
        let members = self.comms.get(&comm)?;
        members.get(usize::try_from(peer).ok()?).copied()
    }

    /// World-rank destinations are only decodable on `WORLD`: derived
    /// communicators use comm-relative numbering the offline trace cannot
    /// translate. Returns the world rank for WORLD-comm peers.
    #[must_use]
    pub fn world_peer(comm: u32, peer: i32) -> Option<usize> {
        (comm == WORLD && peer >= 0).then_some(peer as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dampi_clocks::ClockStamp;
    use dampi_mpi::{Comm, ANY_TAG};
    use std::collections::BTreeSet;

    fn ev(rank: usize, seq: u64, op: TraceOp) -> TraceEvent {
        TraceEvent {
            rank,
            seq,
            vt: 0.0,
            op,
        }
    }

    fn epoch(rank: usize, clock: u64, kind: NdKind) -> EpochRecord {
        EpochRecord {
            rank,
            clock,
            stamp: ClockStamp::Lamport(clock),
            comm: Comm::WORLD,
            tag_spec: ANY_TAG,
            kind,
            in_region: false,
            guided: false,
            matched_src: Some(0),
            alternates: BTreeSet::new(),
        }
    }

    #[test]
    fn aligns_wildcard_recvs_to_epochs_in_order() {
        let events = vec![
            ev(
                1,
                0,
                TraceOp::Irecv {
                    comm: 0,
                    src: 0,
                    tag: 5,
                },
            ),
            ev(
                1,
                1,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 5,
                },
            ),
            ev(
                1,
                2,
                TraceOp::Irecv {
                    comm: 0,
                    src: ANY_SOURCE,
                    tag: 6,
                },
            ),
        ];
        let epochs = vec![epoch(1, 3, NdKind::Recv), epoch(1, 1, NdKind::Recv)];
        let m = TraceModel::build(2, &events, &epochs);
        // Sorted by clock: epoch clock 1 ↔ op 1, epoch clock 3 ↔ op 2.
        assert_eq!(m.epochs[0].clock, 1);
        assert_eq!(m.epoch_pos, vec![Some(1), Some(2)]);
        assert_eq!(m.epoch_at[1].get(&1), Some(&0));
        assert!(m.notes.is_empty());
    }

    #[test]
    fn count_mismatch_leaves_rank_unmapped() {
        let events = vec![ev(
            0,
            0,
            TraceOp::Irecv {
                comm: 0,
                src: ANY_SOURCE,
                tag: ANY_TAG,
            },
        )];
        let epochs = vec![epoch(0, 1, NdKind::Recv), epoch(0, 2, NdKind::Recv)];
        let m = TraceModel::build(1, &events, &epochs);
        assert_eq!(m.epoch_pos, vec![None, None]);
        assert_eq!(m.notes.len(), 1);
    }

    #[test]
    fn kind_mismatch_leaves_rank_unmapped() {
        let events = vec![ev(
            0,
            0,
            TraceOp::Probe {
                comm: 0,
                src: ANY_SOURCE,
                tag: ANY_TAG,
                hit_source: 1,
            },
        )];
        let epochs = vec![epoch(0, 1, NdKind::Recv)];
        let m = TraceModel::build(1, &events, &epochs);
        assert_eq!(m.epoch_pos, vec![None]);
    }

    #[test]
    fn world_peer_decodes_only_world() {
        assert_eq!(TraceModel::world_peer(0, 3), Some(3));
        assert_eq!(TraceModel::world_peer(0, ANY_SOURCE), None);
        assert_eq!(TraceModel::world_peer(7, 3), None);
    }

    #[test]
    fn comm_table_resolves_dup_and_split_chains() {
        // comm 1 = split of WORLD keeping ranks {1, 2} with *reversed*
        // keys (rank 2 sorts first); comm 2 = dup of comm 1.
        let events = vec![
            ev(
                0,
                0,
                TraceOp::CommSplit {
                    parent: 0,
                    color: -1,
                    member: false,
                    key: 0,
                    result: None,
                },
            ),
            ev(
                1,
                0,
                TraceOp::CommSplit {
                    parent: 0,
                    color: 0,
                    member: true,
                    key: 9,
                    result: Some(1),
                },
            ),
            ev(
                1,
                1,
                TraceOp::CommDup {
                    parent: 1,
                    result: 2,
                },
            ),
            ev(
                2,
                0,
                TraceOp::CommSplit {
                    parent: 0,
                    color: 0,
                    member: true,
                    key: 1,
                    result: Some(1),
                },
            ),
            ev(
                2,
                1,
                TraceOp::CommDup {
                    parent: 1,
                    result: 2,
                },
            ),
        ];
        let m = TraceModel::build(3, &events, &[]);
        assert_eq!(m.comms[&0], vec![0, 1, 2]);
        assert_eq!(m.comms[&1], vec![2, 1], "ordered by (key, parent rank)");
        assert_eq!(m.comms[&2], vec![2, 1], "dup inherits membership");
        assert_eq!(m.resolve_peer(1, 0), Some(2));
        assert_eq!(m.resolve_peer(1, 1), Some(1));
        assert_eq!(m.resolve_peer(1, 2), None);
        assert_eq!(m.resolve_peer(3, 0), None, "unknown comm");
        assert_eq!(m.resolve_peer(0, 1), Some(1));
    }
}
