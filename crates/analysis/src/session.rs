//! Session-typed protocol specs: a small declarative language for global
//! MPI protocols, instantiation at a concrete world size, projection to
//! per-rank local types, and compilation of local types to NFAs the
//! conformance checker walks.
//!
//! The language (one declaration or statement per construct, `#` starts a
//! comment):
//!
//! ```text
//! protocol matmul            # optional display name
//! role master = 0            # singleton role
//! role worker = 1..np        # half-open range family
//! role edge   = {0, np-1}    # explicit set family
//! tag WORK = 10              # named tag
//! skip collectives           # conformance ignores collective ops
//!
//! collective bcast           # every rank calls it ("bcast" also matches
//!                            # the trace's "bcast_u64"-style suffixes)
//! msg master -> w : WORK     # point-to-point (w = foreach variable)
//! msg any worker -> master : RESULT   # some family member sends
//! choice { ... } or { ... }  # internal choice between branches
//! loop { ... }               # zero or more repetitions
//! repeat np-1 { ... }        # exactly n repetitions (n known at np)
//! foreach w in worker { ... }# unrolled over members, ascending
//! ```
//!
//! **Projection** compiles the global type to one local type per rank:
//! a `msg a -> b` between concrete roles is a mandatory send at `a` and a
//! mandatory receive at `b`; `any F` makes the family side *optional*
//! (each member may or may not be the one chosen) while the concrete side
//! stays mandatory with the whole family as its peer set. Collectives
//! project to every rank. The local type is compiled to an NFA (Thompson
//! construction; choice and loops become epsilon structure) so the
//! conformance walk can absorb iteration-boundary ambiguity by subset
//! simulation instead of committing to one parse of the trace.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use dampi_mpi::Tag;

/// FNV-1a 64-bit digest of the spec source — the `spec_digest` stamped
/// into analyzer reports so a plan can be matched to the spec that
/// produced it.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// True when a trace collective name satisfies a spec collective name:
/// exact match, or the spec name is a `_`-separated prefix (so the spec's
/// `allreduce` covers the trace's `allreduce_u64` and `allreduce_f64`).
#[must_use]
pub fn collective_matches(spec_name: &str, trace_name: &str) -> bool {
    trace_name == spec_name
        || (trace_name.len() > spec_name.len()
            && trace_name.starts_with(spec_name)
            && trace_name.as_bytes()[spec_name.len()] == b'_')
}

// ---- Parsed (pre-instantiation) AST ---------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Num {
    Lit(i64),
    Np,
}

/// A `+`/`-` chain over integer literals and `np`, e.g. `np-1`.
#[derive(Debug, Clone)]
struct NumExpr(Vec<(i64, Num)>);

impl NumExpr {
    fn eval(&self, np: usize) -> i64 {
        self.0
            .iter()
            .map(|(sign, n)| {
                sign * match n {
                    Num::Lit(v) => *v,
                    Num::Np => np as i64,
                }
            })
            .sum()
    }
}

#[derive(Debug, Clone)]
enum RoleSetExpr {
    Single(NumExpr),
    Range(NumExpr, NumExpr),
    Set(Vec<NumExpr>),
}

#[derive(Debug, Clone)]
enum PeerExpr {
    Named(String),
    Any(String),
}

#[derive(Debug, Clone)]
enum TagExpr {
    Lit(Tag),
    Named(String),
}

#[derive(Debug, Clone)]
enum Stmt {
    Msg {
        from: PeerExpr,
        to: PeerExpr,
        tag: TagExpr,
    },
    Collective(String),
    Choice(Vec<Vec<Stmt>>),
    Loop(Vec<Stmt>),
    Repeat(NumExpr, Vec<Stmt>),
    Foreach(String, String, Vec<Stmt>),
}

// ---- Tokenizer ------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    Arrow,
    Colon,
    LBrace,
    RBrace,
    Eq,
    DotDot,
    Comma,
    Plus,
    Minus,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::DotDot => write!(f, "`..`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
        }
    }
}

fn lex(text: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let mut it = text.chars().peekable();
    while let Some(&c) = it.peek() {
        match c {
            '#' => {
                for c in it.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            c if c.is_whitespace() => {
                it.next();
            }
            '-' => {
                it.next();
                if it.peek() == Some(&'>') {
                    it.next();
                    out.push(Tok::Arrow);
                } else {
                    out.push(Tok::Minus);
                }
            }
            '.' => {
                it.next();
                if it.next() == Some('.') {
                    out.push(Tok::DotDot);
                } else {
                    return Err("protocol parse error: expected `..`".into());
                }
            }
            ':' => {
                it.next();
                out.push(Tok::Colon);
            }
            '{' => {
                it.next();
                out.push(Tok::LBrace);
            }
            '}' => {
                it.next();
                out.push(Tok::RBrace);
            }
            '=' => {
                it.next();
                out.push(Tok::Eq);
            }
            ',' => {
                it.next();
                out.push(Tok::Comma);
            }
            '+' => {
                it.next();
                out.push(Tok::Plus);
            }
            c if c.is_ascii_digit() => {
                let mut v: i64 = 0;
                while let Some(&d) = it.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        v = v
                            .checked_mul(10)
                            .and_then(|v| v.checked_add(i64::from(digit)))
                            .ok_or_else(|| "protocol parse error: integer overflow".to_string())?;
                        it.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Int(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = it.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        s.push(d);
                        it.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(s));
            }
            other => return Err(format!("protocol parse error: unexpected `{other}`")),
        }
    }
    Ok(out)
}

// ---- Parser ---------------------------------------------------------------

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, String> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| "protocol parse error: unexpected end of spec".to_string())?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok) -> Result<(), String> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(format!("protocol parse error: expected {want}, got {got}"))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(format!(
                "protocol parse error: expected identifier, got {other}"
            )),
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn num_atom(&mut self) -> Result<Num, String> {
        match self.next()? {
            Tok::Int(v) => Ok(Num::Lit(v)),
            Tok::Ident(s) if s == "np" => Ok(Num::Np),
            other => Err(format!(
                "protocol parse error: expected integer or `np`, got {other}"
            )),
        }
    }

    fn num_expr(&mut self) -> Result<NumExpr, String> {
        let mut terms = vec![(1, self.num_atom()?)];
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.pos += 1;
                    terms.push((1, self.num_atom()?));
                }
                Some(Tok::Minus) => {
                    self.pos += 1;
                    terms.push((-1, self.num_atom()?));
                }
                _ => break,
            }
        }
        Ok(NumExpr(terms))
    }

    fn role_set(&mut self) -> Result<RoleSetExpr, String> {
        if self.peek() == Some(&Tok::LBrace) {
            self.pos += 1;
            let mut members = vec![self.num_expr()?];
            while self.peek() == Some(&Tok::Comma) {
                self.pos += 1;
                members.push(self.num_expr()?);
            }
            self.expect(&Tok::RBrace)?;
            return Ok(RoleSetExpr::Set(members));
        }
        let lo = self.num_expr()?;
        if self.peek() == Some(&Tok::DotDot) {
            self.pos += 1;
            let hi = self.num_expr()?;
            Ok(RoleSetExpr::Range(lo, hi))
        } else {
            Ok(RoleSetExpr::Single(lo))
        }
    }

    fn peer(&mut self) -> Result<PeerExpr, String> {
        if self.peek_kw("any") {
            self.pos += 1;
            Ok(PeerExpr::Any(self.ident()?))
        } else {
            Ok(PeerExpr::Named(self.ident()?))
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, String> {
        self.expect(&Tok::LBrace)?;
        let mut body = Vec::new();
        while self.peek() != Some(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err("protocol parse error: unclosed `{`".into());
            }
            body.push(self.stmt()?);
        }
        self.pos += 1;
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, String> {
        let kw = self.ident()?;
        match kw.as_str() {
            "msg" => {
                let from = self.peer()?;
                self.expect(&Tok::Arrow)?;
                let to = self.peer()?;
                self.expect(&Tok::Colon)?;
                let tag = match self.next()? {
                    Tok::Int(v) => TagExpr::Lit(v as Tag),
                    Tok::Ident(s) => TagExpr::Named(s),
                    other => {
                        return Err(format!(
                            "protocol parse error: expected tag after `:`, got {other}"
                        ))
                    }
                };
                Ok(Stmt::Msg { from, to, tag })
            }
            "collective" => Ok(Stmt::Collective(self.ident()?)),
            "choice" => {
                let mut branches = vec![self.block()?];
                while self.peek_kw("or") {
                    self.pos += 1;
                    branches.push(self.block()?);
                }
                Ok(Stmt::Choice(branches))
            }
            "loop" => Ok(Stmt::Loop(self.block()?)),
            "repeat" => {
                let n = self.num_expr()?;
                Ok(Stmt::Repeat(n, self.block()?))
            }
            "foreach" => {
                let var = self.ident()?;
                let kw = self.ident()?;
                if kw != "in" {
                    return Err(format!(
                        "protocol parse error: expected `in` after foreach variable, got `{kw}`"
                    ));
                }
                let family = self.ident()?;
                Ok(Stmt::Foreach(var, family, self.block()?))
            }
            other => Err(format!(
                "protocol parse error: unknown statement `{other}` \
                 (expected msg/collective/choice/loop/repeat/foreach)"
            )),
        }
    }
}

// ---- The spec -------------------------------------------------------------

/// A parsed protocol spec: role and tag declarations plus the global-type
/// body, ready to instantiate at any world size.
#[derive(Debug, Clone)]
pub struct ProtocolSpec {
    /// Display name from the `protocol` line (defaults to `"protocol"`).
    pub name: String,
    /// When true, the conformance walk ignores collective trace ops (for
    /// protocols whose point-to-point structure does not interleave
    /// atomically with barriers, e.g. producers sending *before* a
    /// barrier that consumers receive *after*).
    pub skip_collectives: bool,
    roles: Vec<(String, RoleSetExpr)>,
    tags: BTreeMap<String, Tag>,
    body: Vec<Stmt>,
    source: String,
}

impl ProtocolSpec {
    /// Parse a spec from its textual form.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            toks: lex(text)?,
            pos: 0,
        };
        let mut spec = Self {
            name: "protocol".to_string(),
            skip_collectives: false,
            roles: Vec::new(),
            tags: BTreeMap::new(),
            body: Vec::new(),
            source: text.to_string(),
        };
        while p.peek().is_some() {
            if p.peek_kw("protocol") {
                p.pos += 1;
                spec.name = p.ident()?;
            } else if p.peek_kw("role") {
                p.pos += 1;
                let name = p.ident()?;
                p.expect(&Tok::Eq)?;
                let set = p.role_set()?;
                if spec.roles.iter().any(|(n, _)| n == &name) {
                    return Err(format!("protocol error: role `{name}` declared twice"));
                }
                spec.roles.push((name, set));
            } else if p.peek_kw("tag") {
                p.pos += 1;
                let name = p.ident()?;
                p.expect(&Tok::Eq)?;
                let Tok::Int(v) = p.next()? else {
                    return Err(format!(
                        "protocol error: tag `{name}` needs an integer value"
                    ));
                };
                spec.tags.insert(name, v as Tag);
            } else if p.peek_kw("skip") {
                p.pos += 1;
                let what = p.ident()?;
                if what != "collectives" {
                    return Err(format!("protocol error: cannot skip `{what}`"));
                }
                spec.skip_collectives = true;
            } else {
                let stmt = p.stmt()?;
                spec.body.push(stmt);
            }
        }
        Ok(spec)
    }

    /// FNV-1a digest of the spec source text.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a64(self.source.as_bytes())
    }

    /// Instantiate the global type at a concrete world size: resolve
    /// roles and tags, unroll `repeat`/`foreach`, and validate every rank
    /// reference against `nprocs`.
    pub fn instantiate(&self, nprocs: usize) -> Result<Global, String> {
        let mut roles: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
        for (name, set) in &self.roles {
            let eval = |e: &NumExpr| -> Result<usize, String> {
                let v = e.eval(nprocs);
                if v < 0 || v as usize >= nprocs {
                    return Err(format!(
                        "protocol error: role `{name}` member {v} out of range for np={nprocs}"
                    ));
                }
                Ok(v as usize)
            };
            let members: BTreeSet<usize> = match set {
                RoleSetExpr::Single(e) => BTreeSet::from([eval(e)?]),
                RoleSetExpr::Set(es) => es.iter().map(&eval).collect::<Result<_, _>>()?,
                RoleSetExpr::Range(lo, hi) => {
                    let (l, h) = (lo.eval(nprocs), hi.eval(nprocs));
                    if l < 0 || h > nprocs as i64 || l > h {
                        return Err(format!(
                            "protocol error: role `{name}` range {l}..{h} invalid for np={nprocs}"
                        ));
                    }
                    (l as usize..h as usize).collect()
                }
            };
            // Roles may overlap (a family can alias singletons, e.g.
            // `worker = {1, 2}` next to `left = 1`); what must be
            // disjoint are the two endpoints of any one message, checked
            // per-message during lowering.
            roles.insert(name.clone(), members);
        }
        let mut ctx = Ctx {
            np: nprocs,
            roles,
            tags: &self.tags,
            vars: BTreeMap::new(),
        };
        Ok(Global::Seq(lower_body(&self.body, &mut ctx)?))
    }
}

struct Ctx<'a> {
    np: usize,
    roles: BTreeMap<String, BTreeSet<usize>>,
    tags: &'a BTreeMap<String, Tag>,
    vars: BTreeMap<String, usize>,
}

impl Ctx<'_> {
    fn peers(&self, p: &PeerExpr) -> Result<Peers, String> {
        match p {
            PeerExpr::Named(name) => {
                if let Some(&rank) = self.vars.get(name) {
                    return Ok(Peers::One(rank));
                }
                let members = self
                    .roles
                    .get(name)
                    .ok_or_else(|| format!("protocol error: unknown role `{name}`"))?;
                if members.len() == 1 {
                    Ok(Peers::One(*members.iter().next().expect("singleton")))
                } else {
                    Err(format!(
                        "protocol error: role `{name}` has {} members; use `any {name}` \
                         or a foreach variable",
                        members.len()
                    ))
                }
            }
            PeerExpr::Any(name) => {
                let members = self
                    .roles
                    .get(name)
                    .ok_or_else(|| format!("protocol error: unknown role `{name}`"))?;
                if members.is_empty() {
                    return Err(format!(
                        "protocol error: role `{name}` is empty at np={}",
                        self.np
                    ));
                }
                Ok(Peers::Any(members.clone()))
            }
        }
    }

    fn tag(&self, t: &TagExpr) -> Result<Tag, String> {
        match t {
            TagExpr::Lit(v) => Ok(*v),
            TagExpr::Named(name) => self
                .tags
                .get(name)
                .copied()
                .ok_or_else(|| format!("protocol error: unknown tag `{name}`")),
        }
    }
}

fn lower_body(body: &[Stmt], ctx: &mut Ctx<'_>) -> Result<Vec<Global>, String> {
    let mut out = Vec::new();
    for stmt in body {
        match stmt {
            Stmt::Msg { from, to, tag } => {
                let (from, to) = (ctx.peers(from)?, ctx.peers(to)?);
                // Distinct-party checks: a family message must pin down
                // who is on the other side, so `any F -> b` with `b ∈ F`
                // (or overlapping families) is rejected.
                let overlap = match (&from, &to) {
                    (Peers::One(_), Peers::One(_)) => false, // self-msg OK
                    (Peers::Any(f), Peers::One(b)) | (Peers::One(b), Peers::Any(f)) => {
                        f.contains(b)
                    }
                    (Peers::Any(f), Peers::Any(g)) => !f.is_disjoint(g),
                };
                if overlap {
                    return Err(
                        "protocol error: message endpoints overlap (a rank cannot be \
                         both the `any` family and the other side)"
                            .into(),
                    );
                }
                out.push(Global::Msg {
                    from,
                    to,
                    tag: ctx.tag(tag)?,
                });
            }
            Stmt::Collective(name) => out.push(Global::Collective(name.clone())),
            Stmt::Choice(branches) => {
                let bs = branches
                    .iter()
                    .map(|b| Ok(Global::Seq(lower_body(b, ctx)?)))
                    .collect::<Result<Vec<_>, String>>()?;
                out.push(Global::Choice(bs));
            }
            Stmt::Loop(body) => {
                out.push(Global::Loop(Box::new(Global::Seq(lower_body(body, ctx)?))));
            }
            Stmt::Repeat(n, body) => {
                let n = n.eval(ctx.np);
                if !(0..=1024).contains(&n) {
                    return Err(format!("protocol error: repeat count {n} out of range"));
                }
                for _ in 0..n {
                    out.extend(lower_body(body, ctx)?);
                }
            }
            Stmt::Foreach(var, family, body) => {
                if ctx.vars.contains_key(var) {
                    return Err(format!("protocol error: foreach variable `{var}` shadowed"));
                }
                let members: Vec<usize> = ctx
                    .roles
                    .get(family)
                    .ok_or_else(|| format!("protocol error: unknown role `{family}`"))?
                    .iter()
                    .copied()
                    .collect();
                for m in members {
                    ctx.vars.insert(var.clone(), m);
                    let lowered = lower_body(body, ctx);
                    ctx.vars.remove(var);
                    out.extend(lowered?);
                }
            }
        }
    }
    Ok(out)
}

// ---- Instantiated global type ---------------------------------------------

/// A message endpoint after instantiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Peers {
    /// A single concrete rank.
    One(usize),
    /// Any member of a role family.
    Any(BTreeSet<usize>),
}

impl Peers {
    /// The set of world ranks this endpoint may be.
    #[must_use]
    pub fn ranks(&self) -> BTreeSet<usize> {
        match self {
            Peers::One(r) => BTreeSet::from([*r]),
            Peers::Any(s) => s.clone(),
        }
    }
}

/// The instantiated global type (roles resolved, loops bounded, families
/// unrolled where the spec iterated them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Global {
    /// Statements in order.
    Seq(Vec<Global>),
    /// A point-to-point message.
    Msg {
        /// Sender endpoint.
        from: Peers,
        /// Receiver endpoint.
        to: Peers,
        /// Concrete message tag.
        tag: Tag,
    },
    /// A collective every rank participates in.
    Collective(String),
    /// Internal choice between branches.
    Choice(Vec<Global>),
    /// Zero or more repetitions of the body.
    Loop(Box<Global>),
}

/// A per-rank local type obtained by projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Local {
    /// Actions in order.
    Seq(Vec<Local>),
    /// Send a message with `tag` to one of `to`.
    Send {
        /// Admissible destination ranks.
        to: BTreeSet<usize>,
        /// Concrete message tag.
        tag: Tag,
    },
    /// Receive a message with `tag` from one of `from`.
    Recv {
        /// Admissible source ranks.
        from: BTreeSet<usize>,
        /// Concrete message tag.
        tag: Tag,
    },
    /// Participate in a collective.
    Collective(String),
    /// One of the branches.
    Choice(Vec<Local>),
    /// Zero or more repetitions.
    Loop(Box<Local>),
    /// Nothing (the rank is not involved).
    End,
}

impl Global {
    /// Project the global type onto one rank's local type.
    #[must_use]
    pub fn project(&self, rank: usize) -> Local {
        match self {
            Global::Seq(items) => Local::Seq(items.iter().map(|g| g.project(rank)).collect()),
            Global::Collective(name) => Local::Collective(name.clone()),
            Global::Choice(branches) => {
                Local::Choice(branches.iter().map(|g| g.project(rank)).collect())
            }
            Global::Loop(body) => Local::Loop(Box::new(body.project(rank))),
            Global::Msg { from, to, tag } => {
                let send = Local::Send {
                    to: to.ranks(),
                    tag: *tag,
                };
                let recv = Local::Recv {
                    from: from.ranks(),
                    tag: *tag,
                };
                let optional = |action: Local| Local::Choice(vec![action, Local::End]);
                let sender = match from {
                    Peers::One(a) if *a == rank => Some(send.clone()),
                    Peers::Any(f) if f.contains(&rank) => Some(optional(send)),
                    _ => None,
                };
                let receiver = match to {
                    Peers::One(b) if *b == rank => Some(recv.clone()),
                    Peers::Any(g) if g.contains(&rank) => Some(optional(recv)),
                    _ => None,
                };
                match (sender, receiver) {
                    (Some(s), Some(r)) => Local::Seq(vec![s, r]), // self-message
                    (Some(s), None) => s,
                    (None, Some(r)) => r,
                    (None, None) => Local::End,
                }
            }
        }
    }
}

// ---- NFA ------------------------------------------------------------------

/// A transition label in a local-type NFA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sym {
    /// Send with this tag to one of these ranks.
    Send {
        /// Admissible destination ranks.
        to: BTreeSet<usize>,
        /// Concrete message tag.
        tag: Tag,
    },
    /// Receive with this tag from one of these ranks.
    Recv {
        /// Admissible source ranks.
        from: BTreeSet<usize>,
        /// Concrete message tag.
        tag: Tag,
    },
    /// Participate in a collective with this (spec) name.
    Collective(String),
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Send { to, tag } => {
                write!(f, "send(tag {tag} -> {:?})", to.iter().collect::<Vec<_>>())
            }
            Sym::Recv { from, tag } => {
                write!(
                    f,
                    "recv(tag {tag} <- {:?})",
                    from.iter().collect::<Vec<_>>()
                )
            }
            Sym::Collective(name) => write!(f, "collective {name}"),
        }
    }
}

/// The NFA compiled from one rank's local type (Thompson construction).
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Labeled transitions per state.
    pub edges: Vec<Vec<(Sym, usize)>>,
    /// Epsilon transitions per state.
    pub eps: Vec<Vec<usize>>,
    /// Start state.
    pub start: usize,
    /// The unique accepting state.
    pub accept: usize,
}

impl Nfa {
    /// Compile a local type.
    #[must_use]
    pub fn compile(local: &Local) -> Self {
        let mut nfa = Nfa {
            edges: Vec::new(),
            eps: Vec::new(),
            start: 0,
            accept: 0,
        };
        let (start, accept) = nfa.build(local);
        nfa.start = start;
        nfa.accept = accept;
        nfa
    }

    fn state(&mut self) -> usize {
        self.edges.push(Vec::new());
        self.eps.push(Vec::new());
        self.edges.len() - 1
    }

    fn build(&mut self, local: &Local) -> (usize, usize) {
        match local {
            Local::End => {
                let s = self.state();
                (s, s)
            }
            Local::Send { to, tag } => self.atom(Sym::Send {
                to: to.clone(),
                tag: *tag,
            }),
            Local::Recv { from, tag } => self.atom(Sym::Recv {
                from: from.clone(),
                tag: *tag,
            }),
            Local::Collective(name) => self.atom(Sym::Collective(name.clone())),
            Local::Seq(items) => {
                let first = self.state();
                let mut cur = first;
                for item in items {
                    let (i, o) = self.build(item);
                    self.eps[cur].push(i);
                    cur = o;
                }
                (first, cur)
            }
            Local::Choice(branches) => {
                let (a, b) = (self.state(), self.state());
                for branch in branches {
                    let (i, o) = self.build(branch);
                    self.eps[a].push(i);
                    self.eps[o].push(b);
                }
                (a, b)
            }
            Local::Loop(body) => {
                let s = self.state();
                let (i, o) = self.build(body);
                self.eps[s].push(i);
                self.eps[o].push(s);
                (s, s)
            }
        }
    }

    fn atom(&mut self, sym: Sym) -> (usize, usize) {
        let (a, b) = (self.state(), self.state());
        self.edges[a].push((sym, b));
        (a, b)
    }

    /// Epsilon closure of a state set.
    #[must_use]
    pub fn closure(&self, set: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut out = set.clone();
        let mut work: Vec<usize> = set.iter().copied().collect();
        while let Some(s) = work.pop() {
            for &t in &self.eps[s] {
                if out.insert(t) {
                    work.push(t);
                }
            }
        }
        out
    }

    /// The initial (closed) state set.
    #[must_use]
    pub fn initial(&self) -> BTreeSet<usize> {
        self.closure(&BTreeSet::from([self.start]))
    }

    /// True when a (closed) state set contains the accepting state — the
    /// local type may legitimately end here.
    #[must_use]
    pub fn accepting(&self, states: &BTreeSet<usize>) -> bool {
        states.contains(&self.accept)
    }

    /// Advance a (closed) state set over every labeled edge `pred`
    /// accepts; returns the closed successor set (empty = no transition).
    #[must_use]
    pub fn step(&self, states: &BTreeSet<usize>, pred: impl Fn(&Sym) -> bool) -> BTreeSet<usize> {
        let mut next = BTreeSet::new();
        for &s in states {
            for (sym, t) in &self.edges[s] {
                if pred(sym) {
                    next.insert(*t);
                }
            }
        }
        self.closure(&next)
    }

    /// Every labeled edge reachable from a (closed) state set — the
    /// "expected next actions" used in diagnostics.
    #[must_use]
    pub fn expected(&self, states: &BTreeSet<usize>) -> Vec<&Sym> {
        let mut out = Vec::new();
        for &s in states {
            for (sym, _) in &self.edges[s] {
                if !out.contains(&sym) {
                    out.push(sym);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "
        protocol demo
        role master = 0
        role worker = 1..np
        tag WORK = 10
        tag RESULT = 11

        collective bcast
        foreach w in worker {
            msg master -> w : WORK
        }
        loop {
            msg any worker -> master : RESULT
        }
    ";

    #[test]
    fn parses_and_instantiates() {
        let spec = ProtocolSpec::parse(DEMO).unwrap();
        assert_eq!(spec.name, "demo");
        assert!(!spec.skip_collectives);
        let g = spec.instantiate(3).unwrap();
        // bcast + two unrolled WORK messages + the loop.
        let Global::Seq(items) = &g else { panic!() };
        assert_eq!(items.len(), 4);
        assert_eq!(items[0], Global::Collective("bcast".into()));
        assert_eq!(
            items[1],
            Global::Msg {
                from: Peers::One(0),
                to: Peers::One(1),
                tag: 10
            }
        );
    }

    #[test]
    fn digest_is_stable_per_source() {
        let a = ProtocolSpec::parse(DEMO).unwrap();
        let b = ProtocolSpec::parse(DEMO).unwrap();
        assert_eq!(a.digest(), b.digest());
        let c = ProtocolSpec::parse("role r = 0").unwrap();
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn rejects_out_of_range_roles() {
        let spec = ProtocolSpec::parse("role r = 5").unwrap();
        let err = spec.instantiate(3).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn rejects_overlapping_endpoints_but_allows_role_aliases() {
        // Roles may alias each other...
        let spec = ProtocolSpec::parse("role a = 0 role b = {0, 1} msg a -> any b : 1").unwrap();
        assert!(spec.instantiate(2).unwrap_err().contains("overlap"));
        // ...but one message's endpoints must be disjoint.
        let spec = ProtocolSpec::parse("role a = 0 role f = 1..np msg any f -> any f : 1").unwrap();
        assert!(spec.instantiate(3).unwrap_err().contains("overlap"));
        let spec = ProtocolSpec::parse("role a = 0 role b = {0, 1} msg a -> b : 1").unwrap();
        assert!(spec.instantiate(2).is_err()); // bare multi-member role
    }

    #[test]
    fn rejects_unknown_names() {
        let spec = ProtocolSpec::parse("msg a -> b : 1").unwrap();
        assert!(spec.instantiate(2).unwrap_err().contains("unknown role"));
        let spec = ProtocolSpec::parse("role a = 0 role b = 1 msg a -> b : T").unwrap();
        assert!(spec.instantiate(2).unwrap_err().contains("unknown tag"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(ProtocolSpec::parse("msg a ->").is_err());
        assert!(ProtocolSpec::parse("frobnicate { }").is_err());
        assert!(ProtocolSpec::parse("choice {").is_err());
        assert!(ProtocolSpec::parse("skip everything").is_err());
    }

    #[test]
    fn projection_shapes() {
        let spec = ProtocolSpec::parse(DEMO).unwrap();
        let g = spec.instantiate(3).unwrap();
        // Master: bcast, two mandatory sends, loop of mandatory receives
        // from the worker family.
        let m = g.project(0);
        let Local::Seq(items) = &m else { panic!() };
        assert_eq!(items[0], Local::Collective("bcast".into()));
        assert_eq!(
            items[1],
            Local::Send {
                to: BTreeSet::from([1]),
                tag: 10
            }
        );
        let Local::Loop(body) = &items[3] else {
            panic!("{items:?}")
        };
        let Local::Seq(loop_items) = body.as_ref() else {
            panic!()
        };
        assert_eq!(
            loop_items[0],
            Local::Recv {
                from: BTreeSet::from([1, 2]),
                tag: 11
            }
        );
        // Worker 2: the WORK message for worker 1 projects to End; its own
        // is a mandatory receive; the loop send is optional (a choice with
        // End).
        let w = g.project(2);
        let Local::Seq(items) = &w else { panic!() };
        assert_eq!(items[1], Local::End);
        assert_eq!(
            items[2],
            Local::Recv {
                from: BTreeSet::from([0]),
                tag: 10
            }
        );
    }

    #[test]
    fn nfa_walks_a_conforming_sequence() {
        let spec = ProtocolSpec::parse(DEMO).unwrap();
        let g = spec.instantiate(3).unwrap();
        let nfa = Nfa::compile(&g.project(0));
        let mut states = nfa.initial();
        assert!(!nfa.accepting(&states), "bcast still pending");
        states = nfa.step(&states, |s| matches!(s, Sym::Collective(n) if n == "bcast"));
        assert!(!states.is_empty());
        for dest in [1usize, 2] {
            states = nfa.step(
                &states,
                |s| matches!(s, Sym::Send { to, tag } if *tag == 10 && to.contains(&dest)),
            );
            assert!(!states.is_empty(), "send to {dest} rejected");
        }
        // Loop: two RESULT receives, accepting after each.
        for _ in 0..2 {
            assert!(nfa.accepting(&states));
            states = nfa.step(
                &states,
                |s| matches!(s, Sym::Recv { tag, .. } if *tag == 11),
            );
            assert!(!states.is_empty());
        }
        assert!(nfa.accepting(&states));
        // A third WORK send is not in the protocol here.
        let dead = nfa.step(
            &states,
            |s| matches!(s, Sym::Send { tag, .. } if *tag == 10),
        );
        assert!(dead.is_empty());
    }

    #[test]
    fn repeat_unrolls_with_np_arithmetic() {
        let spec =
            ProtocolSpec::parse("role a = 0 role b = 1 repeat np-2 { msg a -> b : 5 }").unwrap();
        let g = spec.instantiate(4).unwrap();
        let Global::Seq(items) = &g else { panic!() };
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn collective_name_matching() {
        assert!(collective_matches("allreduce", "allreduce_u64"));
        assert!(collective_matches("barrier", "barrier"));
        assert!(!collective_matches("reduce", "allreduce_u64"));
        assert!(!collective_matches("allreduce", "allreducex"));
    }
}
