//! **dampi-analysis** — static pre-replay analysis for DAMPI.
//!
//! DAMPI's schedule generator branches on every alternate match the free
//! run records. That frontier is *dynamic* and over-eager: late-message
//! analysis checks clocks, not channel order, so it can record alternates
//! that MPI non-overtaking makes unmatchable; and it branches per epoch
//! even when the program treats whole groups of ranks interchangeably.
//! This crate re-examines the free run *before any replay is dispatched*:
//! from the application-level event trace plus the epoch log it builds a
//! per-rank operation model with over-approximated match sets, then runs
//! three pruning passes and four definite-bug lints.
//!
//! - [`passes::deterministic_wildcards`] — singleton feasible sender set:
//!   the wildcard can never branch (reported, counted, nothing to prune).
//! - [`passes::infeasible_alternates`] — message-counting under
//!   non-overtaking refutes a recorded alternate; it is dropped from the
//!   root frontier before dispatch.
//! - [`passes::refine_match_sets`] — cross-epoch fixed-point refinement:
//!   a positional per-channel simulation sharpens every match set, each
//!   newly-deterministic wildcard feeding the next round's claims.
//! - [`passes::rank_orbits_oblivious`] — ranks with indistinguishable
//!   traced behavior are interchangeable; payload-oblivious twins (same
//!   behavior, different delivered contents, no wildcard receives) merge
//!   with content digests masked. The scheduler explores one
//!   representative per orbit among a fork's untried alternates.
//! - [`lints`] — collective-sequence mismatch (L001), request leak
//!   (L002), send/receive count imbalance (L003), unbuffered self-send
//!   deadlock (L004), stuck wildcard receive (L005).
//! - [`session`] + [`conformance`] — session-typed protocol specs: a
//!   declarative global-protocol language, projection to per-rank local
//!   types, and a conformance checker emitting protocol-order (L006),
//!   unexpected-peer (L007), and incomplete-protocol (L008) lints. When
//!   every rank conforms, protocol states that pin a wildcard's sender
//!   down feed two extra plan sections (`protocol_deterministic`,
//!   `protocol_infeasible`) — see DESIGN.md §16.
//!
//! The output is an [`AnalysisReport`] carrying a
//! [`dampi_core::prune::PrunePlan`] that `dampi-cli verify
//! --prune-static` feeds to the scheduler. Soundness: with pruning on,
//! the reported error set is identical to the unpruned run (up to rank
//! renaming within an orbit) — see DESIGN.md §11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod lints;
pub mod model;
pub mod passes;
pub mod report;
pub mod session;

pub use conformance::{Conformance, ProtocolFacts, RankStatus};
pub use lints::{Lint, Severity};
pub use model::TraceModel;
pub use report::{AnalysisReport, ProtocolSummary, ANALYSIS_SCHEMA_VERSION};
pub use session::ProtocolSpec;

use dampi_core::scheduler::RunResult;
use dampi_core::verifier::DampiVerifier;
use dampi_mpi::program::MpiProgram;
use dampi_mpi::trace::TraceEvent;

/// Analyze a traced free run (event trace + epoch log) of `program`.
#[must_use]
pub fn analyze(
    program: &str,
    nprocs: usize,
    events: &[TraceEvent],
    run: &RunResult,
) -> AnalysisReport {
    analyze_with_protocol(program, nprocs, events, run, None)
        .expect("analysis without a protocol spec cannot fail")
}

/// Analyze a traced free run, optionally checking it against a protocol
/// spec. With a spec, the report gains L006–L008 conformance lints, the
/// `protocol` summary block, and — when every rank conforms — the
/// protocol pruning facts in the plan. Fails only when the spec cannot be
/// instantiated at this world size.
pub fn analyze_with_protocol(
    program: &str,
    nprocs: usize,
    events: &[TraceEvent],
    run: &RunResult,
    spec: Option<&ProtocolSpec>,
) -> Result<AnalysisReport, String> {
    let model = TraceModel::build(nprocs, events, &run.epochs);
    let sets = passes::match_sets(&model);
    let refinement = passes::refine_match_sets(&model, &sets);
    let mut plan = passes::assemble_plan(&model, &sets, &refinement);
    let mut lints = lints::run_lints(&model);
    let mut notes = model.notes.clone();
    let mut protocol = None;
    if let Some(spec) = spec {
        let c = conformance::check(spec, &model)?;
        protocol = Some(ProtocolSummary {
            spec_name: c.spec_name.clone(),
            spec_digest: c.spec_digest,
            rank_status: c.rank_status.iter().map(|s| s.as_str()).collect(),
            l006: c.count(conformance::L006),
            l007: c.count(conformance::L007),
            l008: c.count(conformance::L008),
        });
        plan.protocol_deterministic = c.facts.deterministic;
        plan.protocol_infeasible = c.facts.infeasible;
        lints.extend(c.lints);
        notes.extend(c.notes);
    }
    let set_sizes = |sets: &passes::MatchSets| {
        sets.iter()
            .map(|((r, c), s)| (format!("{r}:{c}"), s.as_ref().map(|s| s.len())))
            .collect()
    };
    Ok(AnalysisReport {
        program: program.to_owned(),
        nprocs,
        epochs: model.epochs.len(),
        epochs_mapped: model.epoch_pos.iter().filter(|p| p.is_some()).count(),
        alternates_recorded: model
            .epochs
            .iter()
            .map(|e| e.unexplored_alternates().len())
            .sum(),
        match_set_sizes: set_sizes(&sets),
        refined_match_set_sizes: set_sizes(&refinement.sets),
        refinement_iterations: refinement.iterations,
        plan,
        lints,
        protocol,
        notes,
    })
}

/// Run `program` once under the tool stack with event tracing and analyze
/// the result — the one-call entry `dampi-cli analyze` uses.
#[must_use]
pub fn analyze_program(verifier: &DampiVerifier, program: &dyn MpiProgram) -> AnalysisReport {
    let (events, run) = verifier.traced_run(program);
    analyze(program.name(), verifier.sim.nprocs, &events, &run)
}

/// [`analyze_program`] with an optional protocol spec.
pub fn analyze_program_with_protocol(
    verifier: &DampiVerifier,
    program: &dyn MpiProgram,
    spec: Option<&ProtocolSpec>,
) -> Result<AnalysisReport, String> {
    let (events, run) = verifier.traced_run(program);
    analyze_with_protocol(program.name(), verifier.sim.nprocs, &events, &run, spec)
}
