#!/usr/bin/env bash
# CI gate: format, build, full test suite, lints-as-errors, docs, bench smoke.
# Tier-1 is the root-package `cargo test -q`; the workspace run covers
# every crate. Pass --offline (default here) since the build is vendored.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo build --release --offline --workspace
cargo test -q --offline
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace
# Bench smoke: the newest harnesses must still run end to end (fast
# parameters; the vendored criterion runs each closure once).
DAMPI_BENCH_FAST=1 cargo bench --offline -p dampi-bench --bench parallel_explore
DAMPI_BENCH_FAST=1 cargo bench --offline -p dampi-bench --bench metrics_overhead
# Metrics smoke: snapshot the racers campaign at two worker counts, then
# lint schema + invariants and assert the semantic sections are
# byte-identical (the cross---jobs determinism contract, end to end).
MDIR="$(mktemp -d)"
trap 'rm -rf "$MDIR"' EXIT
./target/release/dampi-cli verify racers --np 4 --jobs 1 --metrics "$MDIR/m1.json" > /dev/null
./target/release/dampi-cli verify racers --np 4 --jobs 4 --metrics "$MDIR/m4.json" \
    --trace "$MDIR/m4.trace.jsonl" > /dev/null
./target/release/metrics-lint "$MDIR/m1.json" "$MDIR/m4.json" --expect-semantic-match
echo "ci: all green"
