#!/usr/bin/env bash
# CI gate: format, build, full test suite, lints-as-errors, docs, bench smoke.
# Tier-1 is the root-package `cargo test -q`; the workspace run covers
# every crate. Pass --offline (default here) since the build is vendored.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo build --release --offline --workspace
cargo test -q --offline
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace
# Bench smoke: the newest harnesses must still run end to end (fast
# parameters; the vendored criterion runs each closure once).
DAMPI_BENCH_FAST=1 cargo bench --offline -p dampi-bench --bench parallel_explore
DAMPI_BENCH_FAST=1 cargo bench --offline -p dampi-bench --bench metrics_overhead
DAMPI_BENCH_FAST=1 cargo bench --offline -p dampi-bench --bench shard_overhead
# Metrics smoke: snapshot the racers campaign at two worker counts, then
# lint schema + invariants and assert the semantic sections are
# byte-identical (the cross---jobs determinism contract, end to end).
MDIR="$(mktemp -d)"
trap 'rm -rf "$MDIR"' EXIT
./target/release/dampi-cli verify racers --np 4 --jobs 1 --metrics "$MDIR/m1.json" > /dev/null
./target/release/dampi-cli verify racers --np 4 --jobs 4 --metrics "$MDIR/m4.json" \
    --trace "$MDIR/m4.trace.jsonl" > /dev/null
./target/release/metrics-lint "$MDIR/m1.json" "$MDIR/m4.json" --expect-semantic-match
# Static-analysis smoke: schema-valid analyzer JSON on two workloads, the
# seeded bug firing exactly its lint (and exit 2), then the pruning
# contract at the CLI boundary — matmul checks error-set equality (holds
# whether or not its nondeterministic task-pool trace exposes the orbit),
# racers checks the actual replay reduction (its trace is deterministic).
./target/release/dampi-cli analyze racers --np 4 --json > "$MDIR/racers.analysis.json"
if ./target/release/dampi-cli analyze collective_mismatch --np 4 --json \
    > "$MDIR/cm.analysis.json"; then
  echo "ci: analyze collective_mismatch must exit non-zero (L001 is an error)" >&2
  exit 1
fi
python3 - "$MDIR/racers.analysis.json" "$MDIR/cm.analysis.json" <<'PY'
import json, sys
for path in sys.argv[1:3]:
    r = json.load(open(path))
    for key in ("schema_version", "program", "nprocs", "epochs", "epochs_mapped",
                "alternates_recorded", "match_set_sizes", "deterministic_wildcards",
                "infeasible_alternates", "orbits", "lints", "error_lints", "notes",
                "plan_version", "refined_match_set_sizes", "refinement_iterations",
                "refined_deterministic_wildcards", "refined_infeasible_alternates",
                "oblivious_receives", "protocol_deterministic_wildcards",
                "protocol_infeasible_alternates", "protocol"):
        assert key in r, f"{path}: missing `{key}`"
    assert r["schema_version"] == 2, r["schema_version"]
    assert r["plan_version"] == 3, r["plan_version"]
    # No --protocol flag on these runs: the block must be absent-by-null.
    assert r["protocol"] is None, r["protocol"]
    for lint in r["lints"]:
        assert set(lint) == {"id", "kind", "severity", "ranks", "message"}, lint
        assert lint["id"].startswith("L") and lint["severity"] in ("error", "warning")
racers, cm = (json.load(open(p)) for p in sys.argv[1:3])
assert racers["orbits"] == [[0, 2], [1, 3]], racers["orbits"]
assert [l["id"] for l in cm["lints"]] == ["L001"], cm["lints"]
assert cm["error_lints"] == 1
print("ci: analyzer JSON schema ok")
PY
# L005 smoke: the seeded stuck-wildcard reproducer must exit 2 with the
# refinement-backed definite-stuck lint (plus the request-leak warning).
if ./target/release/dampi-cli analyze stuck_wildcard --np 3 --json \
    > "$MDIR/sw.analysis.json"; then
  echo "ci: analyze stuck_wildcard must exit non-zero (L005 is an error)" >&2
  exit 1
fi
python3 - "$MDIR/sw.analysis.json" <<'PY'
import json, sys
sw = json.load(open(sys.argv[1]))
assert [l["id"] for l in sw["lints"]] == ["L002", "L005"], sw["lints"]
assert sw["error_lints"] == 1
empty = [k for k, v in sw["refined_match_set_sizes"].items() if v == 0]
assert empty, sw["refined_match_set_sizes"]
print("ci: L005 stuck-wildcard smoke ok")
PY
# Analyzer reports must also pass the dedicated schema lint (the same
# binary that guards metrics snapshots, in --analysis mode).
./target/release/metrics-lint --analysis \
    "$MDIR/racers.analysis.json" "$MDIR/cm.analysis.json" "$MDIR/sw.analysis.json"
# Protocol conformance smoke: every committed .protocol spec must be
# conformant against its workload (exit 0, zero L006–L008 — the
# zero-false-positive gate at the CLI boundary) ...
for wl_np in "matmul 4" "matmul_ack 4" "adlb 4" "racers 4" \
             "ordered_stages 3" "protocol_demo 3"; do
  set -- $wl_np
  ./target/release/dampi-cli analyze "$1" --np "$2" --protocol "$1" --json \
      > "$MDIR/$1.proto.json"
done
./target/release/metrics-lint --analysis \
    "$MDIR/matmul.proto.json" "$MDIR/matmul_ack.proto.json" "$MDIR/adlb.proto.json" \
    "$MDIR/racers.proto.json" "$MDIR/ordered_stages.proto.json" \
    "$MDIR/protocol_demo.proto.json"
# ... and each seeded violation pattern must exit 2 with exactly its lint.
for wl_lint in "protocol_order_bug L006" "protocol_peer_bug L007" \
               "protocol_short_bug L008"; do
  set -- $wl_lint
  if ./target/release/dampi-cli analyze "$1" --np 3 --protocol protocol_demo --json \
      > "$MDIR/$1.proto.json"; then
    echo "ci: analyze $1 must exit non-zero ($2 is an error)" >&2
    exit 1
  fi
done
./target/release/metrics-lint --analysis \
    "$MDIR/protocol_order_bug.proto.json" "$MDIR/protocol_peer_bug.proto.json" \
    "$MDIR/protocol_short_bug.proto.json"
python3 - "$MDIR" <<'PY'
import json, sys
d = sys.argv[1]
for name in ("matmul", "matmul_ack", "adlb", "racers", "ordered_stages",
             "protocol_demo"):
    r = json.load(open(f"{d}/{name}.proto.json"))
    p = r["protocol"]
    assert p["rank_status"] == ["conformant"] * r["nprocs"], (name, p)
    assert (p["l006"], p["l007"], p["l008"]) == (0, 0, 0), (name, p)
for name, lint in (("protocol_order_bug", "L006"), ("protocol_peer_bug", "L007"),
                   ("protocol_short_bug", "L008")):
    r = json.load(open(f"{d}/{name}.proto.json"))
    assert [l["id"] for l in r["lints"]] == [lint], (name, r["lints"])
    assert r["lints"][0]["ranks"] == [0] and r["error_lints"] == 1, (name, r)
    # Non-conformant runs contribute no pruning facts.
    assert r["protocol_deterministic_wildcards"] == [], (name, r)
    assert r["protocol_infeasible_alternates"] == [], (name, r)
print("ci: protocol conformance smoke ok (6 specs clean, L006/7/8 seeded)")
PY
# Protocol-guided pruning contract at the CLI boundary: on ordered_stages
# the v3 plan must replay strictly fewer schedules than the v2 plan,
# with the error set equal to the unpruned campaign's, invariant across
# --jobs — the "prunes at least one additional replay" acceptance bar.
# (--prune-static still rejects --shards — the plan is keyed to a
# supervisor-local free run — so shard coverage stays the unpruned
# byte-parity block above.)
./target/release/dampi-cli verify ordered_stages --np 3 --json > "$MDIR/os.base.json"
./target/release/dampi-cli verify ordered_stages --np 3 --prune-static --json \
    > "$MDIR/os.v2.json"
./target/release/dampi-cli verify ordered_stages --np 3 --prune-static \
    --protocol ordered_stages --json > "$MDIR/os.v3.json"
./target/release/dampi-cli verify ordered_stages --np 3 --prune-static \
    --protocol ordered_stages --jobs 4 --json > "$MDIR/os.v3j4.json"
cmp "$MDIR/os.v3.json" "$MDIR/os.v3j4.json"
python3 - "$MDIR" <<'PY'
import json, sys
d = sys.argv[1]
load = lambda n: json.load(open(f"{d}/{n}"))
base, v2, v3 = load("os.base.json"), load("os.v2.json"), load("os.v3.json")
assert v2["errors"] == base["errors"] == v3["errors"], (base["errors"], v2["errors"], v3["errors"])
assert v3["interleavings"] < v2["interleavings"] <= base["interleavings"], (
    base["interleavings"], v2["interleavings"], v3["interleavings"])
assert v3["protocol_alternates_pruned"] + v3["protocol_wildcards_deterministic"] > 0, v3
print(f"ci: protocol pruning contract ok (ordered_stages "
      f"{base['interleavings']} -> v2 {v2['interleavings']} -> v3 {v3['interleavings']})")
PY
# Protocol-template fuzz smoke: 24 seeds of the known-answer conformance
# corpus — the generator plants L006/L007/L008 violations and the
# checker must answer every one exactly (`fuzz` exits non-zero on any
# miss or false positive).
./target/release/dampi-cli fuzz --protocol-templates 24 --out "$MDIR/proto.fuzz.jsonl"
python3 - "$MDIR/proto.fuzz.jsonl" <<'PY'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(lines) == 24, len(lines)
assert all(v["ok"] for v in lines), [v for v in lines if not v["ok"]]
planted = [v for v in lines if v["expected"]]
assert len(planted) == 12, len(planted)
print(f"ci: protocol-template fuzz ok ({len(planted)}/24 seeded violations caught)")
PY
# Version-1 prune plans (no version field, no refined sets) must keep
# loading and steering campaigns — the committed fixture is the contract.
cargo test -q --offline -p dampi-core --test prune_plan_compat
./target/release/dampi-cli verify matmul --json > "$MDIR/mm.base.json"
./target/release/dampi-cli verify matmul --prune-static --json > "$MDIR/mm.pruned.json"
./target/release/dampi-cli verify matmul_ack --json > "$MDIR/ma.base.json"
./target/release/dampi-cli verify matmul_ack --prune-static --json > "$MDIR/ma.pruned.json"
./target/release/dampi-cli verify racers --np 4 --json > "$MDIR/rc.base.json"
./target/release/dampi-cli verify racers --np 4 --prune-static --json > "$MDIR/rc.pruned.json"
# fig3 exits 2 (bugs found) — that is the point: the strongest prune
# check is error-set equality on a workload whose error set is non-empty.
./target/release/dampi-cli verify fig3 --np 3 --json > "$MDIR/f3.base.json" && exit 1 || [ $? -eq 2 ]
./target/release/dampi-cli verify fig3 --np 3 --prune-static --json > "$MDIR/f3.pruned.json" && exit 1 || [ $? -eq 2 ]
python3 - "$MDIR" <<'PY'
import json, sys
d = sys.argv[1]
load = lambda n: json.load(open(f"{d}/{n}"))
mb, mp = load("mm.base.json"), load("mm.pruned.json")
assert mp["errors"] == mb["errors"], (mb["errors"], mp["errors"])
assert mp["interleavings"] <= mb["interleavings"]
# Ack-mode matmul: the payload-oblivious orbit must actually collapse the
# campaign (its trace is deterministic — 162 -> 27 on every run), while
# content mode above stays a guaranteed no-op.
ab, ap = load("ma.base.json"), load("ma.pruned.json")
assert ap["errors"] == ab["errors"], (ab["errors"], ap["errors"])
assert ap["interleavings"] < ab["interleavings"], (ab["interleavings"], ap["interleavings"])
rb, rp = load("rc.base.json"), load("rc.pruned.json")
assert rp["errors"] == rb["errors"], (rb["errors"], rp["errors"])
assert rp["interleavings"] < rb["interleavings"], (rb["interleavings"], rp["interleavings"])
assert rp["alternates_pruned"] > 0
fb, fp = load("f3.base.json"), load("f3.pruned.json")
assert fb["errors"], "fig3 plain campaign must find the x==33 bug"
assert fp["errors"] == fb["errors"], (fb["errors"], fp["errors"])
print(f"ci: prune contract ok (racers {rb['interleavings']} -> {rp['interleavings']}, fig3 errors kept)")
PY
# Shard smoke: a process-sharded campaign must be byte-identical to
# --jobs 1 — same report JSON, same checkpoint journal — both clean and
# with a worker killed mid-campaign (the supervisor re-dispatches the
# lost subtree through the same in-order commit path). matmul/adlb fold
# wall-clock into their virtual time, so across *separate* campaigns
# they get error-set equality instead of byte equality.
./target/release/dampi-cli verify racers --np 4 --jobs 1 --json \
    --journal "$MDIR/rc.j1.journal" > "$MDIR/rc.j1.json"
./target/release/dampi-cli verify racers --np 4 --shards 2 --json \
    --journal "$MDIR/rc.s2.journal" --metrics "$MDIR/rc.s2.metrics.json" > "$MDIR/rc.s2.json"
./target/release/dampi-cli verify racers --np 4 --shards 2 --json \
    --worker-fault kill:1 --heartbeat-timeout 0.5 \
    --journal "$MDIR/rc.s2k.journal" --metrics "$MDIR/rc.s2k.metrics.json" > "$MDIR/rc.s2k.json"
cmp "$MDIR/rc.j1.json" "$MDIR/rc.s2.json"
cmp "$MDIR/rc.j1.json" "$MDIR/rc.s2k.json"
cmp "$MDIR/rc.j1.journal" "$MDIR/rc.s2.journal"
cmp "$MDIR/rc.j1.journal" "$MDIR/rc.s2k.journal"
./target/release/metrics-lint "$MDIR/rc.s2.metrics.json" "$MDIR/rc.s2k.metrics.json" \
    --expect-semantic-match
# fig3's error set is non-empty — the strongest equality check (exit 2).
./target/release/dampi-cli verify fig3 --np 3 --shards 2 --json \
    > "$MDIR/f3.s2.json" && exit 1 || [ $? -eq 2 ]
./target/release/dampi-cli verify matmul --shards 2 --json > "$MDIR/mm.s2.json"
./target/release/dampi-cli verify adlb --max 300 --jobs 1 --json > "$MDIR/ad.j1.json"
./target/release/dampi-cli verify adlb --max 300 --shards 2 --json > "$MDIR/ad.s2.json"
# Poison-subtree quarantine: a one-slot fleet whose worker dies on every
# job must terminate with an honest partial-coverage report, not hang.
./target/release/dampi-cli verify racers --np 4 --shards 1 \
    --worker-fault kill:0:always --heartbeat-timeout 0.5 --max-attempts 2 --json \
    > "$MDIR/rc.quarantine.json"
python3 - "$MDIR" <<'PY'
import json, sys
d = sys.argv[1]
load = lambda n: json.load(open(f"{d}/{n}"))
chaos = load("rc.s2k.metrics.json")["wall_clock"]["shard"]
assert chaos["workers_lost"] >= 1, chaos
assert chaos["subtrees_redispatched"] >= 1, chaos
f3b, f3s = load("f3.base.json"), load("f3.s2.json")
assert f3s["errors"] == f3b["errors"], (f3b["errors"], f3s["errors"])
mmb, mms = load("mm.base.json"), load("mm.s2.json")
assert mms["errors"] == mmb["errors"], (mmb["errors"], mms["errors"])
assert mms["interleavings"] == mmb["interleavings"]
adj, ads = load("ad.j1.json"), load("ad.s2.json")
assert ads["errors"] == adj["errors"], (adj["errors"], ads["errors"])
assert ads["interleavings"] == adj["interleavings"]
q = load("rc.quarantine.json")
assert q["quarantined"] == 1 and len(q["timeouts"]) == 1, (q["quarantined"], q["timeouts"])
assert not q["errors"], q["errors"]
print("ci: shard parity + chaos recovery + quarantine ok "
      f"(chaos fleet: {chaos})")
PY
# Replay-cache warm-run contract: verify an unchanged workload twice
# against one store and the second run must be served from it — hit rate
# >= 90% (it is 100%), wall-clock <= 0.5x cold, report byte-identical.
# --replay-cost-ms prices each *executed* replay as an MPI job launch
# (cache hits never execute, so they are free): the wall ratio then
# measures what the cache eliminates, deterministically across CI
# machines, instead of racing the simulator against the JSON parser.
python3 - "$MDIR" <<'PY'
import json, subprocess, sys, time
d = sys.argv[1]
def run(out, metrics, args):
    t = time.time()
    with open(out, "w") as f:
        r = subprocess.run(["./target/release/dampi-cli", "verify", *args,
                            "--metrics", metrics, "--json"], stdout=f)
    assert r.returncode == 0, (out, r.returncode)
    return time.time() - t
for name, args in (("matmul", ["matmul"]),
                   ("adlb", ["adlb", "--np", "4", "--max", "400"])):
    base = [*args, "--cache", f"{d}/cache-{name}", "--replay-cost-ms", "5"]
    cold = run(f"{d}/{name}.cold.json", f"{d}/{name}.cold.metrics.json", base)
    warm = run(f"{d}/{name}.warm.json", f"{d}/{name}.warm.metrics.json", base)
    same = open(f"{d}/{name}.cold.json").read() == open(f"{d}/{name}.warm.json").read()
    assert same, f"{name}: warm report differs from cold"
    c = json.load(open(f"{d}/{name}.warm.metrics.json"))["cache"]
    rate = c["hits"] / (c["hits"] + c["misses"])
    assert rate >= 0.9, f"{name}: warm hit rate {rate:.2f} < 0.9 ({c})"
    assert c["stores"] == 0 and c["stale"] == 0, f"{name}: warm wrote or evicted ({c})"
    assert warm <= 0.5 * cold, f"{name}: warm {warm:.2f}s > 0.5x cold {cold:.2f}s"
    print(f"ci: cache {name} cold {cold:.2f}s -> warm {warm:.2f}s, hit rate {rate:.2f}")
PY
# The warm contract must hold under every driver (the acceptance bar):
# warm runs at --jobs 1, --jobs 4, and --shards 2 against the matmul
# store are all byte-identical to the cold report and all-hits.
./target/release/dampi-cli verify matmul --cache "$MDIR/cache-matmul" --jobs 1 \
    --metrics "$MDIR/matmul.wj1.metrics.json" --json > "$MDIR/matmul.wj1.json"
./target/release/dampi-cli verify matmul --cache "$MDIR/cache-matmul" --jobs 4 \
    --metrics "$MDIR/matmul.wj4.metrics.json" --json > "$MDIR/matmul.wj4.json"
./target/release/dampi-cli verify matmul --cache "$MDIR/cache-matmul" --shards 2 \
    --metrics "$MDIR/matmul.ws2.metrics.json" --json > "$MDIR/matmul.ws2.json"
cmp "$MDIR/matmul.cold.json" "$MDIR/matmul.wj1.json"
cmp "$MDIR/matmul.cold.json" "$MDIR/matmul.wj4.json"
cmp "$MDIR/matmul.cold.json" "$MDIR/matmul.ws2.json"
# Invalidation: flip a workload parameter (--np) against the same store
# and the run must be a full miss — zero hits, zero stale reuse.
./target/release/dampi-cli verify adlb --np 5 --max 400 --cache "$MDIR/cache-adlb" \
    --metrics "$MDIR/adlb.flip.metrics.json" --json > /dev/null
# The metrics lint checks the cache-ledger invariants on every snapshot;
# semantic sections must also be cache- and driver-invariant.
./target/release/metrics-lint \
    "$MDIR/matmul.cold.metrics.json" "$MDIR/matmul.warm.metrics.json" \
    "$MDIR/matmul.wj1.metrics.json" "$MDIR/matmul.wj4.metrics.json" \
    "$MDIR/matmul.ws2.metrics.json" --expect-semantic-match
./target/release/metrics-lint \
    "$MDIR/adlb.cold.metrics.json" "$MDIR/adlb.warm.metrics.json" \
    "$MDIR/adlb.flip.metrics.json"
python3 - "$MDIR" <<'PY'
import json, sys
d = sys.argv[1]
for tag in ("wj1", "wj4", "ws2"):
    c = json.load(open(f"{d}/matmul.{tag}.metrics.json"))["cache"]
    assert c["misses"] == 0 and c["hits"] > 0, (tag, c)
flip = json.load(open(f"{d}/adlb.flip.metrics.json"))["cache"]
assert flip["hits"] == 0 and flip["stale"] == 0, flip
assert flip["misses"] > 0 and flip["stores"] == flip["misses"], flip
print("ci: cache driver parity (jobs 1/4, shards 2) + --np flip full miss ok")
PY
DAMPI_BENCH_FAST=1 cargo bench --offline -p dampi-bench --bench prune_static
DAMPI_BENCH_FAST=1 cargo bench --offline -p dampi-bench --bench replay_cache
DAMPI_BENCH_FAST=1 cargo bench --offline -p dampi-bench --bench protocol_prune
# Bench-history gate: the committed snapshot must agree with the newest
# BENCH_HISTORY.jsonl row for each workload, and rows are only compared
# when their explicit `params` strings match — a config change starts a
# fresh series instead of masquerading as a speedup (or a regression).
# Across two params-matched rows, >20% more replays or >20% more pruned
# wall-clock (beyond 50 ms of noise floor) fails the gate.
python3 - <<'PY'
import json
history = [json.loads(l) for l in open("BENCH_HISTORY.jsonl") if l.strip()]
snapshot = json.load(open("BENCH_prune_static.json"))["workloads"]
series = {}
for row in history:
    series.setdefault((row["workload"], row["params"]), []).append(row)
for workload, point in snapshot.items():
    rows = series.get((workload, point["params"]))
    assert rows, f"{workload}: no history row with params `{point['params']}`"
    last = rows[-1]
    for key in ("base_interleavings", "pruned_interleavings", "alternates_pruned",
                "orbits", "errors"):
        assert last[key] == point[key], (workload, key, last[key], point[key])
# The protocol-prune snapshot is gated the same way; the deterministic
# columns are the whole measurement (both workloads replay single-digit
# interleavings), so all of them must agree exactly.
proto_snapshot = json.load(open("BENCH_protocol_prune.json"))["workloads"]
for workload, point in proto_snapshot.items():
    rows = series.get((workload, point["params"]))
    assert rows, f"{workload}: no history row with params `{point['params']}`"
    last = rows[-1]
    for key in ("base_interleavings", "v2_interleavings", "protocol_interleavings",
                "protocol_alternates_pruned", "protocol_wildcards_deterministic",
                "plan_deterministic", "plan_infeasible", "errors"):
        assert last[key] == point[key], (workload, key, last[key], point[key])
# The replay-cache snapshot is gated the same way: exact agreement with
# the newest params-matched row on everything deterministic (wall-clock
# seconds are machine-local and stay ungated).
cache_snapshot = json.load(open("BENCH_replay_cache.json"))["workloads"]
for workload, point in cache_snapshot.items():
    rows = series.get((workload, point["params"]))
    assert rows, f"{workload}: no history row with params `{point['params']}`"
    last = rows[-1]
    for key in ("interleavings", "errors", "warm_hit_rate"):
        assert last[key] == point[key], (workload, key, last[key], point[key])
for (workload, params), rows in series.items():
    if len(rows) < 2:
        continue
    prev, last = rows[-2], rows[-1]
    # Replay-cache series: a warm run losing more than 10 points of hit
    # rate under identical params means subtree reuse regressed.
    if "warm_hit_rate" in prev and "warm_hit_rate" in last:
        assert last["warm_hit_rate"] >= prev["warm_hit_rate"] - 0.10, (
            f"{workload}: warm hit rate fell {prev['warm_hit_rate']} -> "
            f"{last['warm_hit_rate']} under identical params `{params}`")
    # Protocol-prune series: >20% more v3 replays under identical params
    # means the session-type facts stopped refuting schedules.
    if "protocol_interleavings" in prev and "protocol_interleavings" in last:
        assert last["protocol_interleavings"] <= prev["protocol_interleavings"] * 1.2, (
            f"{workload}: protocol replay regression "
            f"{prev['protocol_interleavings']} -> {last['protocol_interleavings']} "
            f"under identical params `{params}`")
    if "pruned_interleavings" not in prev or "pruned_interleavings" not in last:
        continue  # shard/cache series: different schema, no prune gate
    assert last["pruned_interleavings"] <= prev["pruned_interleavings"] * 1.2, (
        f"{workload}: replay regression {prev['pruned_interleavings']} -> "
        f"{last['pruned_interleavings']} under identical params `{params}`")
    wall_prev, wall_last = prev["pruned_wall_s"], last["pruned_wall_s"]
    assert wall_last <= wall_prev * 1.2 or wall_last - wall_prev <= 0.05, (
        f"{workload}: wall regression {wall_prev} -> {wall_last}s "
        f"under identical params `{params}`")
print("ci: bench history consistent, no params-matched regressions")
PY
# Fuzz smoke: the differential clock-mode oracle (PR 9). Regenerate a
# 64-seed prefix of the committed corpus and it must be byte-identical —
# generation, verification, and verdicts are all deterministic (the
# fuzz harness runs every mode under the cooperative scheduler,
# SimConfig::deterministic). Then scan the full committed 256-seed
# corpus: every disagreement must carry a classification (Fig-4-style
# omission, mechanism variance, budget cap); any BUG:* verdict is a
# mined, unfixed tool bug and fails the gate. `fuzz` itself exits
# non-zero on unclassified verdicts, so the prefix run doubles as that
# check on fresh verdicts too.
./target/release/dampi-cli fuzz --seed 0 --count 64 --out "$MDIR/fuzz.head.jsonl"
head -64 corpus/fuzz_verdicts.jsonl > "$MDIR/fuzz.committed.head.jsonl"
cmp "$MDIR/fuzz.head.jsonl" "$MDIR/fuzz.committed.head.jsonl"
python3 - <<'PY'
import json
lines = [json.loads(l) for l in open("corpus/fuzz_verdicts.jsonl") if l.strip()]
assert len(lines) == 256, len(lines)
bad = [v for v in lines if v["verdict"].startswith("BUG:")]
assert not bad, f"unclassified disagreements in committed corpus: {bad}"
from collections import Counter
dist = Counter(v["verdict"] for v in lines)
print("ci: fuzz corpus classified:", dict(dist))
PY
echo "ci: all green"
