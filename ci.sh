#!/usr/bin/env bash
# CI gate: build, full test suite, lints-as-errors.
# Tier-1 is the root-package `cargo test -q`; the workspace run covers
# every crate. Pass --offline (default here) since the build is vendored.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --offline --workspace
cargo test -q --offline
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings
echo "ci: all green"
