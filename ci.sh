#!/usr/bin/env bash
# CI gate: format, build, full test suite, lints-as-errors, docs, bench smoke.
# Tier-1 is the root-package `cargo test -q`; the workspace run covers
# every crate. Pass --offline (default here) since the build is vendored.
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --check
cargo build --release --offline --workspace
cargo test -q --offline
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace
# Bench smoke: the newest harness must still run end to end (fast
# parameters; the vendored criterion runs each closure once).
DAMPI_BENCH_FAST=1 cargo bench --offline -p dampi-bench --bench parallel_explore
echo "ci: all green"
