//! "Unsafe" MPI send patterns and the eager/rendezvous protocol switch.
//!
//! A program in which two ranks both `MPI_Send` before receiving is only
//! correct if the runtime buffers the messages (the eager protocol). Real
//! MPI implementations switch to a rendezvous protocol above an
//! eager-limit threshold — at which point the same program deadlocks on a
//! different cluster, a classic portability bug. The substrate models the
//! switch, and DAMPI reports the deadlock.
//!
//! Run with: `cargo run --example eager_rendezvous`

use dampi::core::verifier::DampiVerifier;
use dampi::mpi::envelope::codec;
use dampi::mpi::{run_native, Comm, FnProgram, Mpi, SimConfig};

fn head_to_head(
    words: usize,
) -> FnProgram<impl Fn(&mut dyn Mpi) -> dampi::mpi::Result<()> + Send + Sync> {
    FnProgram(move |mpi: &mut dyn Mpi| {
        let peer = (mpi.world_rank() ^ 1) as i32;
        // Both ranks send first — safe only with buffering.
        mpi.send(Comm::WORLD, peer, 0, codec::encode_u64s(&vec![7; words]))?;
        let _ = mpi.recv(Comm::WORLD, peer, 0)?;
        Ok(())
    })
}

fn main() {
    println!("head-to-head sends of 1 KiB payloads:\n");

    // Development cluster: generous eager limit — everything buffered.
    let dev = SimConfig::new(2).with_eager_limit(Some(64 * 1024));
    let out = run_native(&dev, &head_to_head(128));
    println!(
        "  eager limit 64 KiB:  {}",
        if out.succeeded() {
            "completes (messages buffered)"
        } else {
            "deadlock"
        }
    );

    // Production cluster: small eager limit — the same program hangs.
    let prod = SimConfig::new(2).with_eager_limit(Some(512));
    let out = run_native(&prod, &head_to_head(128));
    println!(
        "  eager limit 512 B:   {}",
        if out.deadlocked() {
            "DEADLOCK (rendezvous: sends block)"
        } else {
            "completes"
        }
    );

    // And the verifier reports it with a diagnosis.
    let report = DampiVerifier::new(prod).verify(&head_to_head(128));
    println!("\nDAMPI on the production configuration:\n{report}");
    assert!(report.deadlocks() >= 1);
}
