//! Verify the ADLB work-sharing library under bounded mixing (paper
//! §III-B2, Fig. 9).
//!
//! ADLB's servers field `GET`/`PUT`/`RESULT` traffic with wildcard
//! receives — "aggressively non-deterministic" in the paper's words, and
//! impossible to verify exhaustively even at a dozen processes. Bounded
//! mixing makes coverage tractable; every run's termination protocol and
//! item accounting are checked by the library itself.
//!
//! Run with: `cargo run --release --example adlb_workstealing`

use dampi::core::{DampiConfig, DampiVerifier, MixingBound};
use dampi::mpi::SimConfig;
use dampi::workloads::adlb::{Adlb, AdlbParams};

fn main() {
    let np = 6;
    let params = AdlbParams {
        nservers: 1,
        seed_items: 3,
        spawn_depth: 1,
        spawn_width: 2,
        work_cost: 1e-5,
    };
    let program = Adlb::new(params);
    println!(
        "ADLB: 1 server, {} workers, {} work items (with spawning)\n",
        np - 1,
        params.items_per_server()
    );
    for k in 0..=2u32 {
        let cfg = DampiConfig::default()
            .with_bound(MixingBound::K(k))
            .with_max_interleavings(20_000);
        let report = DampiVerifier::with_config(SimConfig::new(np), cfg).verify(&program);
        println!(
            "  k={k}: {:>6} interleavings{}, {} errors, {} wildcard receives in the first run",
            report.interleavings,
            if report.budget_exhausted {
                " (capped)"
            } else {
                ""
            },
            report.errors.len(),
            report.wildcards_analyzed,
        );
        assert!(report.errors.is_empty(), "{report}");
    }
    println!("\nall explored schedules completed every work item exactly once");
    println!("and retired every worker — the server asserts both invariants.");
}
