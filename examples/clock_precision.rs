//! The §II-F imprecision of Lamport clocks, made visible (paper Fig. 4).
//!
//! Four cross-coupled processes: P1 and P2 each post a wildcard receive
//! whose natural matches are P0 and P3, then forward to each other. The
//! two forwards are *concurrent* with the wildcard epochs, but their
//! Lamport projections equal the epochs' clocks — indistinguishable from
//! causally-later sends — so Lamport-mode DAMPI misses them as potential
//! matches. Vector-clock mode finds them, at O(N) piggyback cost.
//!
//! Run with: `cargo run --example clock_precision`

use dampi::clocks::ClockMode;
use dampi::core::{DampiConfig, DampiVerifier, DecisionSet, EpochDecision};
use dampi::mpi::SimConfig;
use dampi::workloads::patterns;

fn main() {
    // Force the paper's initial matching: P0 -> P1, P3 -> P2.
    let initial = DecisionSet::guided(
        0,
        vec![
            EpochDecision {
                rank: 1,
                clock: 0,
                src: 0,
            },
            EpochDecision {
                rank: 2,
                clock: 0,
                src: 3,
            },
        ],
    );
    println!("cross-coupled pattern (Fig. 4), initial matching P0->P1, P3->P2\n");
    for mode in [ClockMode::Lamport, ClockMode::Vector] {
        let v = DampiVerifier::with_config(
            SimConfig::new(4),
            DampiConfig::default().with_clock_mode(mode),
        );
        let res = v.instrumented_run(&patterns::fig4_cross_coupled(), &initial);
        assert!(res.outcome.succeeded(), "{:?}", res.outcome.fatal);
        let e10 = res
            .epochs
            .iter()
            .find(|e| e.rank == 1 && e.clock == 0)
            .expect("rank 1's first epoch");
        println!(
            "  {:<7} clocks: P1's wildcard matched P{}, potential alternates {:?} -> {}",
            mode.name(),
            e10.matched_src.expect("matched"),
            e10.alternates,
            if e10.alternates.contains(&2) {
                "found P2's concurrent forward (complete)"
            } else {
                "MISSED P2's concurrent forward (the paper's rare incompleteness)"
            }
        );
    }
    println!();
    println!("Lamport clocks are DAMPI's default: the pattern is rare in practice");
    println!("and the scalar piggyback is what makes thousand-process runs cheap.");
}
