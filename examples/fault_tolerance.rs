//! Fault-tolerant exploration: watchdogs, panic isolation, and resume.
//!
//! Three demonstrations on the paper's Fig. 3 program:
//! 1. a livelocked replay (injected via `FaultPlan`) is killed by the
//!    virtual-time watchdog and reported as partial coverage;
//! 2. a panicking tool stack is confined to its own replay and recorded;
//! 3. a campaign interrupted mid-exploration resumes from its journal and
//!    still finds the bug the interruption hid.
//!
//! Run with: `cargo run --example fault_tolerance`

use dampi::core::{DampiConfig, DampiVerifier};
use dampi::mpi::fault::{FaultAction, FaultPlan, FaultRule};
use dampi::mpi::{MatchPolicy, ReplayBudget, SimConfig};
use dampi::workloads::patterns;

fn sim() -> SimConfig {
    SimConfig::new(3).with_policy(MatchPolicy::LowestRank)
}

fn main() {
    // 1. Replay watchdog: rank 1 livelocks on every guided replay; the
    //    virtual-time budget kills it and the report says so.
    let livelock = FaultPlan::new()
        .with_rule(FaultRule {
            rank: Some(1),
            comm: None,
            nth: 0,
            action: FaultAction::Livelock { step: 0.5 },
        })
        .guided_only();
    let report =
        DampiVerifier::new(sim().with_budget(ReplayBudget::default().with_max_virtual_time(30.0)))
            .with_fault_plan(livelock)
            .verify(&patterns::fig3());
    println!("=== watchdog: livelocked replay ===\n{report}\n");

    // 2. Panic isolation: the tool stack blows up during replays, but the
    //    campaign terminates and records the panic with its schedule.
    let crash = FaultPlan::new()
        .with_rule(FaultRule {
            rank: Some(1),
            comm: None,
            nth: 0,
            action: FaultAction::Crash {
                message: "injected tool-stack panic".into(),
            },
        })
        .guided_only();
    let report = DampiVerifier::new(sim())
        .with_fault_plan(crash)
        .verify(&patterns::fig3());
    println!("=== panic isolation ===\n{report}\n");

    // 3. Checkpoint/resume: interrupt after the first run (before any
    //    replay has found the bug), then resume from the journal.
    let journal = std::env::temp_dir().join("dampi-example.journal");
    let _ = std::fs::remove_file(&journal);
    let interrupted = DampiVerifier::with_config(
        sim(),
        DampiConfig::default()
            .with_max_interleavings(1)
            .with_journal(journal.clone()),
    )
    .verify(&patterns::fig3());
    println!(
        "=== interrupted campaign: {} interleaving(s), {} error(s) ===\n",
        interrupted.interleavings,
        interrupted.errors.len()
    );
    let resumed = DampiVerifier::new(sim())
        .verify_resumed(&patterns::fig3(), &journal)
        .expect("journal loads");
    println!("=== resumed campaign ===\n{resumed}");
    let _ = std::fs::remove_file(&journal);
}
