//! Quickstart: verify the paper's Fig. 3 program and reproduce its bug.
//!
//! Three processes: P0 and P2 both send to P1; P1 receives with
//! `MPI_ANY_SOURCE` and crashes if it gets P2's value. A biased native
//! runtime always delivers P0 first, so plain testing never sees the bug —
//! DAMPI's guided replay forces the alternate match and catches it.
//!
//! Run with: `cargo run --example quickstart`

use dampi::core::verifier::DampiVerifier;
use dampi::mpi::envelope::codec;
use dampi::mpi::proc_api::user_assert;
use dampi::mpi::{Comm, FnProgram, MatchPolicy, Mpi, SimConfig, ANY_SOURCE};

fn report_verifier() -> DampiVerifier {
    DampiVerifier::new(SimConfig::new(3).with_policy(MatchPolicy::LowestRank))
}

fn main() {
    let program = FnProgram(|mpi: &mut dyn Mpi| {
        match mpi.world_rank() {
            0 => {
                mpi.send(Comm::WORLD, 1, 22, codec::encode_u64(22))?;
                mpi.barrier(Comm::WORLD)?;
            }
            2 => {
                mpi.send(Comm::WORLD, 1, 22, codec::encode_u64(33))?;
                mpi.barrier(Comm::WORLD)?;
            }
            _ => {
                mpi.barrier(Comm::WORLD)?;
                let (st, data) = mpi.recv(Comm::WORLD, ANY_SOURCE, 22)?;
                let x = codec::decode_u64(&data);
                println!("  [P1] received x={x} from P{}", st.source);
                user_assert(x != 33, "x == 33")?;
                let _ = mpi.recv(Comm::WORLD, ANY_SOURCE, 22)?;
            }
        }
        Ok(())
    });

    // A biased runtime (always lowest sender rank) masks the bug natively.
    let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);

    println!("1) plain native run (what ordinary testing sees):");
    let native = dampi::mpi::run_native(&sim, &program);
    println!(
        "   -> {}\n",
        if native.succeeded() {
            "clean. The bug is masked by the runtime's match bias."
        } else {
            "failed (unexpected on this runtime)"
        }
    );

    println!("2) DAMPI verification (covers the space of matches):");
    let report = DampiVerifier::new(sim).verify(&program);
    println!("{report}");

    for err in &report.errors {
        let (minimal, _) = report_verifier().minimize_error(&program, err);
        println!("minimized reproduction schedule for `{}`:", err.error);
        for d in &minimal.decisions {
            println!(
                "   at rank {} epoch clock {}: force source {}",
                d.rank, d.clock, d.src
            );
        }
    }
    assert!(!report.errors.is_empty(), "DAMPI must find the x==33 bug");
}
