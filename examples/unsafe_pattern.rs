//! The §V unsafe pattern and DAMPI's scalable local monitor (paper
//! Fig. 10).
//!
//! P1 posts `Irecv(*)`, then crosses a `Barrier` *before* waiting: the
//! barrier transmits P1's already-ticked clock, so P2's post-barrier send
//! — a real competitor for the receive — looks causally-later and escapes
//! late-message analysis. DAMPI cannot explore that match, but it detects
//! the vulnerable pattern dynamically and locally, and alerts.
//!
//! Run with: `cargo run --example unsafe_pattern`

use dampi::core::verifier::DampiVerifier;
use dampi::mpi::{MatchPolicy, SimConfig};
use dampi::workloads::patterns;

fn main() {
    let sim = SimConfig::new(3).with_policy(MatchPolicy::LowestRank);
    let report = DampiVerifier::new(sim).verify(&patterns::fig10_unsafe());
    println!("{report}");
    if report.unsafe_alerts > 0 {
        println!(
            "the monitor flagged {} clock transmission(s) between a wildcard",
            report.unsafe_alerts
        );
        println!("Irecv and its Wait — coverage of that receive is not guaranteed.");
        println!("(the paper's §V: fixable with a pair of clocks, future work)");
    }
    assert!(report.unsafe_alerts > 0, "the monitor must fire on Fig. 10");
}
