//! Verify the master/slave matrix multiplication under different
//! bounded-mixing settings (paper §III-B2, Fig. 8).
//!
//! The master hands out row ranges through wildcard receives; the
//! interleaving space is factorial in the number of slaves. Bounded mixing
//! collapses it while still checking every match of every epoch at least
//! once (k = 0) and letting the user ratchet coverage up with k.
//!
//! Run with: `cargo run --release --example matmul_verify`

use dampi::core::{DampiConfig, DampiVerifier, MixingBound};
use dampi::mpi::SimConfig;
use dampi::workloads::matmul::{Matmul, MatmulParams};

fn main() {
    let np = 6;
    let program = Matmul::new(MatmulParams {
        n: 8,
        rounds_per_slave: 1,
        task_cost: 1e-5,
        ..Default::default()
    });

    println!("verifying matmul ({np} procs, {} slaves):\n", np - 1);
    for bound in [
        MixingBound::K(0),
        MixingBound::K(1),
        MixingBound::K(2),
        MixingBound::Unbounded,
    ] {
        let cfg = DampiConfig::default()
            .with_bound(bound)
            .with_max_interleavings(100_000);
        let report = DampiVerifier::with_config(SimConfig::new(np), cfg).verify(&program);
        println!(
            "  {:<10}  {:>6} interleavings, {} errors, exploration {:.3} simulated s",
            bound.label(),
            report.interleavings,
            report.errors.len(),
            report.total_virtual_time,
        );
        assert!(
            report.errors.is_empty(),
            "matmul is correct under every schedule: {report}"
        );
    }
    println!("\nevery schedule produced a correct product (the master");
    println!("verifies C = A x B against a serial reference on each run).");
}
